//! `repro` — regenerate every table and figure of the MNSIM paper.
//!
//! ```text
//! repro <experiment> [--metrics <path>] [--trace <path>]
//!   where experiment is one of:
//!   table2 table3 table4 table5 table6 table7
//!   fig5 fig6 fig7 fig8 fig9 jpeg all
//! ```
//!
//! With `--metrics <path>` the run executes inside an observability session
//! ([`mnsim_obs`]) and writes the final [`mnsim_obs::MetricsSnapshot`] as
//! JSON to `path` (solver iteration counts, recovery-ladder rungs, pipeline
//! stage timings, DSE throughput, …).
//!
//! With `--trace <path>` the run executes inside a trace session
//! ([`mnsim_obs::trace`]) and writes the hierarchical Chrome trace-event
//! JSON to `path` — open it in `chrome://tracing` or
//! <https://ui.perfetto.dev>. A [`mnsim_obs::TraceSummary`] table
//! (per-level self/total time and per-module model attribution) is printed
//! to stderr.

use mnsim_bench::experiments;
use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_tech::interconnect::InterconnectNode;

fn main() {
    let mut experiment = None;
    let mut metrics_path = None;
    let mut trace_path = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => {
                metrics_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--metrics requires a file path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }));
            }
            "--trace" => {
                trace_path = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace requires a file path");
                    eprintln!("{USAGE}");
                    std::process::exit(2);
                }));
            }
            _ if experiment.is_none() => experiment = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    let session = metrics_path.as_ref().map(|_| obs::session());
    let trace_session = trace_path.as_ref().map(|_| trace::session());
    if let Err(e) = dispatch(&experiment) {
        eprintln!("error while running `{experiment}`: {e}");
        std::process::exit(1);
    }
    if let (Some(path), Some(trace_session)) = (trace_path, trace_session) {
        let collected = trace_session.finish();
        if let Err(e) = std::fs::write(&path, collected.to_chrome_json()) {
            eprintln!("error writing trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprint!("{}", collected.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = metrics_path {
        let json = obs::snapshot().to_json();
        drop(session);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error writing metrics to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}

const USAGE: &str = "usage: repro <table2|table3|table4|table5|table6|table7|fig5|fig6|fig7|fig8|fig9|jpeg|variation|all> [--metrics <path>] [--trace <path>]";

fn dispatch(experiment: &str) -> Result<(), Box<dyn std::error::Error>> {
    match experiment {
        "table2" => print(experiments::table2::run(3, 5)?),
        "table3" => print(experiments::table3::run(&[16, 32, 64, 128, 256])?),
        "table4" => print(experiments::table4::run()?),
        "table5" => print(experiments::table5::run()?),
        "table6" => print(experiments::table6::run()?),
        "table7" => print(experiments::table7::run()?),
        "fig5" => print(experiments::fig5::run(
            &[
                InterconnectNode::N18,
                InterconnectNode::N28,
                InterconnectNode::N45,
                InterconnectNode::N90,
            ],
            &[8, 16, 32, 64, 96, 128],
        )?),
        "fig6" => print(experiments::fig6::run()),
        "fig7" => print(experiments::fig7::run()?),
        "fig8" => print(experiments::fig8::run()?),
        "fig9" => print(experiments::fig9::run()?),
        "jpeg" => print(experiments::jpeg::run()?),
        "variation" => print(experiments::variation::run(&[8, 16, 32], 0.2, 10)?),
        "all" => {
            for exp in [
                "table2", "table3", "table4", "table5", "table6", "table7", "fig5", "fig6",
                "fig7", "fig8", "fig9", "jpeg", "variation",
            ] {
                println!("================================================================");
                dispatch(exp)?;
            }
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn print(text: String) {
    println!("{text}");
}
