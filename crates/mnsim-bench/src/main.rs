//! `repro` — regenerate every table and figure of the MNSIM paper.
//!
//! ```text
//! repro <experiment> [--metrics <path>] [--trace <path>]
//!   where experiment is one of:
//!   table2 table3 table4 table5 table6 table7
//!   fig5 fig6 fig7 fig8 fig9 jpeg variation faultmc all
//! ```
//!
//! The `faultmc` experiment runs a configurable fault-injection
//! Monte-Carlo campaign and accepts the campaign-hardening flags:
//!
//! ```text
//! repro faultmc [--trials N] [--seed S] [--rate R] [--threads T]
//!               [--checkpoint <path>] [--deadline-ms MS]
//!               [--live <path>] [--progress]
//! ```
//!
//! With `--checkpoint` the campaign persists completed trials to `path`
//! and resumes from it on the next invocation (bit-identical to an
//! uninterrupted run). With `--deadline-ms` the campaign stops
//! cooperatively at the deadline and exits with status **3** (checkpoint
//! written first when a policy is set), distinguishing an interrupted
//! campaign from a failed one (status 1).
//!
//! With `--live <path>` the run streams typed progress events
//! ([`mnsim_obs::live`]) as NDJSON to `path` — one flushed JSON object
//! per line (`campaign_started`, `wave_completed` with ETA and items/s,
//! `checkpoint_written`, `deadline_approaching`, `guard_tripped`,
//! `campaign_finished`, periodic `sample` lines), so `tail -f` follows a
//! long campaign live. `--progress` prints a human one-liner per wave to
//! stderr; both flags work for any experiment and compose with
//! `--checkpoint`/`--deadline-ms` (an interrupted run still flushes its
//! final `campaign_finished` event).
//!
//! With `--metrics <path>` the run executes inside an observability session
//! ([`mnsim_obs`]) and writes the final [`mnsim_obs::MetricsSnapshot`] as
//! JSON to `path` (solver iteration counts, recovery-ladder rungs, pipeline
//! stage timings, DSE throughput, …).
//!
//! With `--trace <path>` the run executes inside a trace session
//! ([`mnsim_obs::trace`]) and writes the hierarchical Chrome trace-event
//! JSON to `path` — open it in `chrome://tracing` or
//! <https://ui.perfetto.dev>. A [`mnsim_obs::TraceSummary`] table
//! (per-level self/total time and per-module model attribution) is printed
//! to stderr.

use mnsim_bench::experiments;
use mnsim_core::checkpoint::CheckpointPolicy;
use mnsim_core::error::CoreError;
use mnsim_core::fault_sim::FaultConfig;
use mnsim_core::report::format_report;
use mnsim_core::simulator::Simulator;
use mnsim_core::Config;
use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_tech::fault::FaultRates;
use mnsim_tech::interconnect::InterconnectNode;

/// Flags of the `faultmc` experiment.
#[derive(Debug, Clone)]
struct FaultMcArgs {
    trials: usize,
    seed: u64,
    rate: f64,
    threads: usize,
    checkpoint: Option<String>,
    deadline_ms: Option<u64>,
}

impl Default for FaultMcArgs {
    fn default() -> Self {
        FaultMcArgs {
            trials: 64,
            seed: 42,
            rate: 0.02,
            threads: 0,
            checkpoint: None,
            deadline_ms: None,
        }
    }
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        eprintln!("{USAGE}");
        std::process::exit(2);
    })
}

fn parse_or_usage<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {value:?}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    })
}

fn main() {
    let mut experiment = None;
    let mut metrics_path = None;
    let mut trace_path = None;
    let mut live_path = None;
    let mut progress = false;
    let mut faultmc = FaultMcArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--metrics" => metrics_path = Some(flag_value(&mut args, "--metrics")),
            "--trace" => trace_path = Some(flag_value(&mut args, "--trace")),
            "--live" => live_path = Some(flag_value(&mut args, "--live")),
            "--progress" => progress = true,
            "--trials" => {
                faultmc.trials = parse_or_usage(&flag_value(&mut args, "--trials"), "--trials");
            }
            "--seed" => {
                faultmc.seed = parse_or_usage(&flag_value(&mut args, "--seed"), "--seed");
            }
            "--rate" => {
                faultmc.rate = parse_or_usage(&flag_value(&mut args, "--rate"), "--rate");
            }
            "--threads" => {
                faultmc.threads = parse_or_usage(&flag_value(&mut args, "--threads"), "--threads");
            }
            "--checkpoint" => faultmc.checkpoint = Some(flag_value(&mut args, "--checkpoint")),
            "--deadline-ms" => {
                faultmc.deadline_ms = Some(parse_or_usage(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ));
            }
            _ if experiment.is_none() => experiment = Some(arg),
            _ => {
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    // The live sampler reads the metric registry, so `--live`/`--progress`
    // imply a metrics session even without `--metrics`.
    let live_wanted = live_path.is_some() || progress;
    let session = (metrics_path.is_some() || live_wanted).then(obs::session);
    let trace_session = trace_path.as_ref().map(|_| trace::session());
    let live_session = live_wanted.then(|| {
        let mut live_config = obs::live::LiveConfig::default().with_progress(progress);
        if let Some(path) = &live_path {
            live_config = live_config.to_path(path);
        }
        obs::live::session(live_config).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
    });
    let outcome = dispatch(&experiment, &faultmc);
    // Finish the live stream before deciding the exit status so an
    // interrupted or failed run still flushes its final event.
    if let Some(live) = live_session {
        let live_report = live.finish();
        if let Some(path) = &live_path {
            eprintln!(
                "live telemetry written to {path} ({} lines, {} samples)",
                live_report.events,
                live_report.samples.len()
            );
        }
    }
    if let Err(e) = outcome {
        let interrupted = matches!(
            e.downcast_ref::<CoreError>(),
            Some(CoreError::Cancelled { .. } | CoreError::DeadlineExceeded { .. })
        );
        eprintln!("error while running `{experiment}`: {e}");
        // Status 3: the campaign was cut short by its control plane (a
        // checkpoint was written first when a policy is set), not broken.
        std::process::exit(if interrupted { 3 } else { 1 });
    }
    if let (Some(path), Some(trace_session)) = (trace_path, trace_session) {
        let collected = trace_session.finish();
        if let Err(e) = std::fs::write(&path, collected.to_chrome_json()) {
            eprintln!("error writing trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprint!("{}", collected.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = metrics_path {
        let json = obs::snapshot().to_json();
        drop(session);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error writing metrics to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}

const USAGE: &str = "usage: repro <table2|table3|table4|table5|table6|table7|fig5|fig6|fig7|fig8|fig9|jpeg|variation|faultmc|all> [--metrics <path>] [--trace <path>] [--live <path>] [--progress]\n\
       repro faultmc [--trials N] [--seed S] [--rate R] [--threads T] [--checkpoint <path>] [--deadline-ms MS] [--live <path>] [--progress]";

fn run_faultmc(args: &FaultMcArgs) -> Result<String, Box<dyn std::error::Error>> {
    let config = Config::fully_connected_mlp(&[128, 64])?;
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(args.rate),
        trials: args.trials,
        seed: args.seed,
        ..FaultConfig::default()
    };
    let mut session = Simulator::new(config)
        .threads(args.threads)
        .faults(fault_config);
    if let Some(path) = &args.checkpoint {
        session = session.checkpoint(CheckpointPolicy::new(path));
    }
    if let Some(millis) = args.deadline_ms {
        session = session.deadline_ms(millis);
    }
    let report = session.run()?;
    Ok(format_report(&report))
}

fn dispatch(experiment: &str, faultmc: &FaultMcArgs) -> Result<(), Box<dyn std::error::Error>> {
    match experiment {
        "table2" => print(experiments::table2::run(3, 5)?),
        "table3" => print(experiments::table3::run(&[16, 32, 64, 128, 256])?),
        "table4" => print(experiments::table4::run()?),
        "table5" => print(experiments::table5::run()?),
        "table6" => print(experiments::table6::run()?),
        "table7" => print(experiments::table7::run()?),
        "fig5" => print(experiments::fig5::run(
            &[
                InterconnectNode::N18,
                InterconnectNode::N28,
                InterconnectNode::N45,
                InterconnectNode::N90,
            ],
            &[8, 16, 32, 64, 96, 128],
        )?),
        "fig6" => print(experiments::fig6::run()),
        "fig7" => print(experiments::fig7::run()?),
        "fig8" => print(experiments::fig8::run()?),
        "fig9" => print(experiments::fig9::run()?),
        "jpeg" => print(experiments::jpeg::run()?),
        "variation" => print(experiments::variation::run(&[8, 16, 32], 0.2, 10)?),
        "faultmc" => print(run_faultmc(faultmc)?),
        "all" => {
            for exp in [
                "table2", "table3", "table4", "table5", "table6", "table7", "fig5", "fig6",
                "fig7", "fig8", "fig9", "jpeg", "variation",
            ] {
                println!("================================================================");
                dispatch(exp, faultmc)?;
            }
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn print(text: String) {
    println!("{text}");
}
