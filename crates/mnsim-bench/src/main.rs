//! `repro` — regenerate every table and figure of the MNSIM paper, or
//! run MNSIM as a persistent service.
//!
//! ```text
//! repro <experiment> [--emit <kind>=<path>]...
//!   where experiment is one of:
//!   table2 table3 table4 table5 table6 table7
//!   fig5 fig6 fig7 fig8 fig9 jpeg variation faultmc all
//!   serve client
//! ```
//!
//! # Exit codes (a documented contract — see README)
//!
//! | code | meaning |
//! |---|---|
//! | 0 | success |
//! | 1 | evaluation failure (solver, I/O, internal) |
//! | 2 | configuration/usage error (bad flags, bad config values) |
//! | 3 | interrupted (cancelled or deadline hit; checkpoint written first when a policy is set) |
//! | 4 | server-protocol error (`repro client`: connect/handshake failure, malformed or unsupported request, backpressure, server shutting down) |
//!
//! # Artifact emission
//!
//! Observability artifacts are requested uniformly:
//!
//! ```text
//! repro table3 --emit metrics=m.json --emit trace=t.json --emit live=l.ndjson
//! ```
//!
//! `metrics=<path>` writes the final [`mnsim_obs::MetricsSnapshot`] JSON;
//! `trace=<path>` writes hierarchical Chrome trace-event JSON (open in
//! `chrome://tracing` or <https://ui.perfetto.dev>) and prints the
//! [`mnsim_obs::TraceSummary`] table to stderr; `live=<path>` streams
//! typed progress events ([`mnsim_obs::live`]) as flushed NDJSON so
//! `tail -f` follows a long campaign. The pre-unification spellings
//! `--metrics <path>` / `--trace <path>` / `--live <path>` still work as
//! aliases for one release and print a deprecation note on stderr.
//! `--progress` prints a human one-liner per campaign wave.
//!
//! # Fault-injection campaigns
//!
//! ```text
//! repro faultmc [--trials N] [--seed S] [--rate R] [--threads T]
//!               [--checkpoint <path>] [--deadline-ms MS]
//! ```
//!
//! With `--checkpoint` the campaign persists completed trials to `path`
//! and resumes from it on the next invocation (bit-identical to an
//! uninterrupted run). With `--deadline-ms` the campaign stops
//! cooperatively at the deadline and exits with status **3**.
//!
//! # Simulation as a service
//!
//! ```text
//! repro serve [--socket <path>] [--workers N] [--cache-mb MB]
//!             [--max-pending N] [--threads T] [--emit metrics=<path>]
//!             [--emit live=<path>]
//! repro client --socket <path> [--shutdown] [<request-json>...]
//! ```
//!
//! `serve` runs the [`mnsim_serve`] session server — a versioned
//! line-delimited JSON protocol over the unix socket (or stdio when no
//! `--socket` is given), with a cross-request artifact cache, in-flight
//! deduplication, and per-client fairness. `client` performs the
//! handshake, sends each `<request-json>` line, prints every streamed
//! event and the response to stdout, and exits per the code contract
//! above; `--shutdown` asks the server to stop afterwards.

use mnsim_bench::experiments;
use mnsim_core::checkpoint::CheckpointPolicy;
use mnsim_core::error::CoreError;
use mnsim_core::fault_sim::FaultConfig;
use mnsim_core::report::format_report;
use mnsim_core::simulator::Simulator;
use mnsim_core::Config;
use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_serve::client::Client;
use mnsim_serve::server::{serve, ServeOptions};
use mnsim_tech::fault::FaultRates;
use mnsim_tech::interconnect::InterconnectNode;

/// Flags of the `faultmc` experiment.
#[derive(Debug, Clone)]
struct FaultMcArgs {
    trials: usize,
    seed: u64,
    rate: f64,
    threads: usize,
    checkpoint: Option<String>,
    deadline_ms: Option<u64>,
}

impl Default for FaultMcArgs {
    fn default() -> Self {
        FaultMcArgs {
            trials: 64,
            seed: 42,
            rate: 0.02,
            threads: 0,
            checkpoint: None,
            deadline_ms: None,
        }
    }
}

/// Flags of the `serve` / `client` modes.
#[derive(Debug, Clone, Default)]
struct ServeArgs {
    socket: Option<String>,
    workers: usize,
    cache_mb: usize,
    max_pending: usize,
    shutdown: bool,
}

/// The unified `--emit <kind>=<path>` artifact spec.
#[derive(Debug, Clone, Default)]
struct EmitSpec {
    metrics: Option<String>,
    trace: Option<String>,
    live: Option<String>,
}

impl EmitSpec {
    fn set(&mut self, spec: &str) {
        let Some((kind, path)) = spec.split_once('=') else {
            eprintln!("--emit expects <kind>=<path>, got {spec:?}");
            eprintln!("{USAGE}");
            std::process::exit(2);
        };
        match kind {
            "metrics" => self.metrics = Some(path.to_string()),
            "trace" => self.trace = Some(path.to_string()),
            "live" => self.live = Some(path.to_string()),
            other => {
                eprintln!("--emit: unknown artifact kind {other:?} (metrics, trace, live)");
                eprintln!("{USAGE}");
                std::process::exit(2);
            }
        }
    }
}

fn flag_value(args: &mut impl Iterator<Item = String>, flag: &str) -> String {
    args.next().unwrap_or_else(|| {
        eprintln!("{flag} requires a value");
        eprintln!("{USAGE}");
        std::process::exit(2);
    })
}

fn parse_or_usage<T: std::str::FromStr>(value: &str, flag: &str) -> T {
    value.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse {value:?}");
        eprintln!("{USAGE}");
        std::process::exit(2);
    })
}

fn deprecated_alias(old: &str, kind: &str) {
    eprintln!("note: `{old} <path>` is deprecated; use `--emit {kind}=<path>` (alias kept for one release)");
}

fn main() {
    let mut experiment = None;
    let mut positional = Vec::new();
    let mut emit = EmitSpec::default();
    let mut progress = false;
    let mut faultmc = FaultMcArgs::default();
    let mut serve_args = ServeArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => emit.set(&flag_value(&mut args, "--emit")),
            "--metrics" => {
                deprecated_alias("--metrics", "metrics");
                emit.metrics = Some(flag_value(&mut args, "--metrics"));
            }
            "--trace" => {
                deprecated_alias("--trace", "trace");
                emit.trace = Some(flag_value(&mut args, "--trace"));
            }
            "--live" => {
                deprecated_alias("--live", "live");
                emit.live = Some(flag_value(&mut args, "--live"));
            }
            "--progress" => progress = true,
            "--trials" => {
                faultmc.trials = parse_or_usage(&flag_value(&mut args, "--trials"), "--trials");
            }
            "--seed" => {
                faultmc.seed = parse_or_usage(&flag_value(&mut args, "--seed"), "--seed");
            }
            "--rate" => {
                faultmc.rate = parse_or_usage(&flag_value(&mut args, "--rate"), "--rate");
            }
            "--threads" => {
                faultmc.threads = parse_or_usage(&flag_value(&mut args, "--threads"), "--threads");
            }
            "--checkpoint" => faultmc.checkpoint = Some(flag_value(&mut args, "--checkpoint")),
            "--deadline-ms" => {
                faultmc.deadline_ms = Some(parse_or_usage(
                    &flag_value(&mut args, "--deadline-ms"),
                    "--deadline-ms",
                ));
            }
            "--socket" => serve_args.socket = Some(flag_value(&mut args, "--socket")),
            "--workers" => {
                serve_args.workers =
                    parse_or_usage(&flag_value(&mut args, "--workers"), "--workers");
            }
            "--cache-mb" => {
                serve_args.cache_mb =
                    parse_or_usage(&flag_value(&mut args, "--cache-mb"), "--cache-mb");
            }
            "--max-pending" => {
                serve_args.max_pending =
                    parse_or_usage(&flag_value(&mut args, "--max-pending"), "--max-pending");
            }
            "--shutdown" => serve_args.shutdown = true,
            _ if experiment.is_none() => experiment = Some(arg),
            _ => positional.push(arg),
        }
    }
    let experiment = experiment.unwrap_or_else(|| {
        eprintln!("{USAGE}");
        std::process::exit(2);
    });

    // The service modes own their observability sessions; dispatch to
    // them before opening any here.
    match experiment.as_str() {
        "serve" => std::process::exit(run_serve(&serve_args, &faultmc, &emit)),
        "client" => std::process::exit(run_client(&serve_args, &positional)),
        _ => {}
    }
    if !positional.is_empty() {
        eprintln!("{USAGE}");
        std::process::exit(2);
    }

    // The live sampler reads the metric registry, so a live artifact or
    // `--progress` implies a metrics session even without one requested.
    let live_wanted = emit.live.is_some() || progress;
    let session = (emit.metrics.is_some() || live_wanted).then(obs::session);
    let trace_session = emit.trace.as_ref().map(|_| trace::session());
    let live_session = live_wanted.then(|| {
        let mut live_config = obs::live::LiveConfig::default().with_progress(progress);
        if let Some(path) = &emit.live {
            live_config = live_config.to_path(path);
        }
        obs::live::session(live_config).unwrap_or_else(|e| {
            eprintln!("{e}");
            std::process::exit(1);
        })
    });
    let outcome = dispatch(&experiment, &faultmc);
    // Finish the live stream before deciding the exit status so an
    // interrupted or failed run still flushes its final event.
    if let Some(live) = live_session {
        let live_report = live.finish();
        if let Some(path) = &emit.live {
            eprintln!(
                "live telemetry written to {path} ({} lines, {} samples)",
                live_report.events,
                live_report.samples.len()
            );
        }
    }
    if let Err(e) = outcome {
        let code = match e.downcast_ref::<CoreError>() {
            // Status 3: the campaign was cut short by its control plane
            // (a checkpoint was written first when a policy is set).
            Some(CoreError::Cancelled { .. } | CoreError::DeadlineExceeded { .. }) => 3,
            // Status 2: the configuration itself is invalid.
            Some(
                CoreError::Config { .. }
                | CoreError::ConfigParse { .. }
                | CoreError::InvalidConfig { .. }
                | CoreError::EmptyDesignSpace { .. },
            ) => 2,
            _ => 1,
        };
        eprintln!("error while running `{experiment}`: {e}");
        std::process::exit(code);
    }
    if let (Some(path), Some(trace_session)) = (emit.trace, trace_session) {
        let collected = trace_session.finish();
        if let Err(e) = std::fs::write(&path, collected.to_chrome_json()) {
            eprintln!("error writing trace to `{path}`: {e}");
            std::process::exit(1);
        }
        eprint!("{}", collected.summary().to_table());
        eprintln!("trace written to {path}");
    }
    if let Some(path) = emit.metrics {
        let json = obs::snapshot().to_json();
        drop(session);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("error writing metrics to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics written to {path}");
    }
}

const USAGE: &str = "usage: repro <table2|table3|table4|table5|table6|table7|fig5|fig6|fig7|fig8|fig9|jpeg|variation|faultmc|all> [--emit <metrics|trace|live>=<path>] [--progress]\n\
       repro faultmc [--trials N] [--seed S] [--rate R] [--threads T] [--checkpoint <path>] [--deadline-ms MS]\n\
       repro serve [--socket <path>] [--workers N] [--cache-mb MB] [--max-pending N] [--threads T] [--emit metrics=<path>] [--emit live=<path>]\n\
       repro client --socket <path> [--shutdown] [<request-json>...]\n\
       exit codes: 0 ok, 1 failure, 2 config/usage error, 3 interrupted, 4 server-protocol error";

/// `repro serve`: run the session server until shutdown.
fn run_serve(args: &ServeArgs, faultmc: &FaultMcArgs, emit: &EmitSpec) -> i32 {
    let options = ServeOptions {
        socket: args.socket.clone(),
        workers: args.workers,
        cache_bytes: args.cache_mb << 20,
        max_pending_per_client: if args.max_pending == 0 {
            ServeOptions::default().max_pending_per_client
        } else {
            args.max_pending
        },
        threads_per_job: faultmc.threads,
        metrics_path: emit.metrics.clone(),
        live_path: emit.live.clone(),
    };
    match serve(options) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("serve: {e}");
            1
        }
    }
}

/// Maps one server response line onto the exit-code contract.
fn response_exit_code(response: &str) -> i32 {
    let Ok(value) = obs::parse_json(response) else {
        return 4;
    };
    if value.get("ok").and_then(|v| v.as_bool()) == Some(true) {
        return 0;
    }
    match value
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(|c| c.as_str())
    {
        Some("config") => 2,
        Some("cancelled" | "deadline") => 3,
        _ => 4,
    }
}

/// `repro client`: handshake, send each request, print every line.
fn run_client(args: &ServeArgs, requests: &[String]) -> i32 {
    let Some(socket) = &args.socket else {
        eprintln!("client mode requires --socket <path>");
        eprintln!("{USAGE}");
        return 2;
    };
    let mut client = match Client::connect(socket) {
        Ok(client) => client,
        Err(e) => {
            eprintln!("client: {e}");
            return 4;
        }
    };
    let mut code = 0;
    for request in requests {
        match client.call(request) {
            Ok(outcome) => {
                for event in &outcome.events {
                    println!("{event}");
                }
                println!("{}", outcome.response);
                let this = response_exit_code(&outcome.response);
                if code == 0 {
                    code = this;
                }
            }
            Err(e) => {
                eprintln!("client: {e}");
                return 4;
            }
        }
    }
    if args.shutdown {
        if let Err(e) = client.shutdown() {
            eprintln!("client: {e}");
            return 4;
        }
    }
    code
}

fn run_faultmc(args: &FaultMcArgs) -> Result<String, Box<dyn std::error::Error>> {
    let config = Config::fully_connected_mlp(&[128, 64])?;
    let fault_config = FaultConfig {
        rates: FaultRates::stuck_at(args.rate),
        trials: args.trials,
        seed: args.seed,
        ..FaultConfig::default()
    };
    let mut session = Simulator::new(config)
        .threads(args.threads)
        .faults(fault_config);
    if let Some(path) = &args.checkpoint {
        session = session.checkpoint(CheckpointPolicy::new(path));
    }
    if let Some(millis) = args.deadline_ms {
        session = session.deadline_ms(millis);
    }
    let report = session.run()?;
    Ok(format_report(&report))
}

fn dispatch(experiment: &str, faultmc: &FaultMcArgs) -> Result<(), Box<dyn std::error::Error>> {
    match experiment {
        "table2" => print(experiments::table2::run(3, 5)?),
        "table3" => print(experiments::table3::run(&[16, 32, 64, 128, 256])?),
        "table4" => print(experiments::table4::run()?),
        "table5" => print(experiments::table5::run()?),
        "table6" => print(experiments::table6::run()?),
        "table7" => print(experiments::table7::run()?),
        "fig5" => print(experiments::fig5::run(
            &[
                InterconnectNode::N18,
                InterconnectNode::N28,
                InterconnectNode::N45,
                InterconnectNode::N90,
            ],
            &[8, 16, 32, 64, 96, 128],
        )?),
        "fig6" => print(experiments::fig6::run()),
        "fig7" => print(experiments::fig7::run()?),
        "fig8" => print(experiments::fig8::run()?),
        "fig9" => print(experiments::fig9::run()?),
        "jpeg" => print(experiments::jpeg::run()?),
        "variation" => print(experiments::variation::run(&[8, 16, 32], 0.2, 10)?),
        "faultmc" => print(run_faultmc(faultmc)?),
        "all" => {
            for exp in [
                "table2", "table3", "table4", "table5", "table6", "table7", "fig5", "fig6",
                "fig7", "fig8", "fig9", "jpeg", "variation",
            ] {
                println!("================================================================");
                dispatch(exp, faultmc)?;
            }
        }
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn print(text: String) {
    println!("{text}");
}
