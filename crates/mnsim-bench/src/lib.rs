//! # mnsim-bench — experiment regeneration for the MNSIM reproduction
//!
//! One module per paper table/figure; the `repro` binary dispatches to
//! them. Criterion benches live under `benches/`.
//!
//! | Experiment | Function |
//! |---|---|
//! | Table II | [`experiments::table2::run`] |
//! | Table III | [`experiments::table3::run`] |
//! | Table IV | [`experiments::table4::run`] |
//! | Table V | [`experiments::table5::run`] |
//! | Table VI | [`experiments::table6::run`] |
//! | Table VII | [`experiments::table7::run`] |
//! | Fig. 5 | [`experiments::fig5::run`] |
//! | Fig. 6 | [`experiments::fig6::run`] |
//! | Fig. 7 | [`experiments::fig7::run`] |
//! | Fig. 8 | [`experiments::fig8::run`] |
//! | Fig. 9 | [`experiments::fig9::run`] |
//! | §VII.A JPEG accuracy | [`experiments::jpeg::run`] |
//! | §VI.D device variation | [`experiments::variation::run`] |

pub mod experiments;
pub mod trajectory;
