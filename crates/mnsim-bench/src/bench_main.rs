//! `mnsim-bench` — the benchmark-trajectory harness.
//!
//! ```text
//! mnsim-bench --json <out.json> [--quick]        run the fixed suite
//! mnsim-bench --compare <baseline> <current>     diff two BENCH files
//!             [--threshold <fraction>]           (default 0.15 = 15 %)
//! ```
//!
//! `--compare` prints a comparison table and exits with status 1 when any
//! entry slowed down past the threshold — judged on the median, or on the
//! minimum for entries the baseline spread marks flaky — so CI can surface
//! regressions while staying informational (the job is non-blocking).

use mnsim_bench::trajectory::{compare, comparison_table, parse_bench_json, run_suite};

const USAGE: &str =
    "usage: mnsim-bench --json <out.json> [--quick] | mnsim-bench --compare <baseline> <current> [--threshold <fraction>]";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--json") => run_json(&args[1..]),
        Some("--compare") => run_compare(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            std::process::exit(2);
        }
    }
}

fn run_json(args: &[String]) {
    let Some(path) = args.first() else {
        eprintln!("--json requires an output path\n{USAGE}");
        std::process::exit(2);
    };
    let quick = args.iter().any(|a| a == "--quick");
    let report = run_suite(quick).unwrap_or_else(|e| {
        eprintln!("benchmark suite failed: {e}");
        std::process::exit(1);
    });
    if let Err(e) = std::fs::write(path, report.to_json()) {
        eprintln!("error writing {path}: {e}");
        std::process::exit(1);
    }
    for entry in &report.entries {
        eprintln!(
            "{:<16} min {:>10.6} s  median {:>10.6} s  p95 {:>10.6} s  ({} runs)",
            entry.name, entry.min_s, entry.median_s, entry.p95_s, entry.runs
        );
    }
    eprintln!("benchmark report written to {path}");
}

fn run_compare(args: &[String]) {
    let (Some(baseline_path), Some(current_path)) = (args.first(), args.get(1)) else {
        eprintln!("--compare requires <baseline> <current>\n{USAGE}");
        std::process::exit(2);
    };
    let mut threshold = 0.15;
    if let Some(pos) = args.iter().position(|a| a == "--threshold") {
        threshold = args
            .get(pos + 1)
            .and_then(|v| v.parse::<f64>().ok())
            .unwrap_or_else(|| {
                eprintln!("--threshold requires a fraction, e.g. 0.15\n{USAGE}");
                std::process::exit(2);
            });
    }
    let baseline = read_report(baseline_path);
    let current = read_report(current_path);
    print!("{}", comparison_table(&baseline, &current, threshold));
    let regressions = compare(&baseline, &current, threshold);
    if regressions.is_empty() {
        println!(
            "no regressions beyond {:.0} % across {} entries",
            threshold * 100.0,
            current.entries.len()
        );
    } else {
        for regression in &regressions {
            println!(
                "REGRESSION {}: {:.6} s -> {:.6} s ({:+.1} %)",
                regression.name,
                regression.baseline_s,
                regression.current_s,
                (regression.ratio - 1.0) * 100.0
            );
        }
        std::process::exit(1);
    }
}

fn read_report(path: &str) -> mnsim_bench::trajectory::BenchReport {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("error reading {path}: {e}");
        std::process::exit(2);
    });
    parse_bench_json(&text).unwrap_or_else(|e| {
        eprintln!("error parsing {path}: {e}");
        std::process::exit(2);
    })
}
