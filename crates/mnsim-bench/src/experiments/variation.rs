//! **§VI.D (device variation)** — Monte-Carlo verification of the
//! variation-considered accuracy model: random per-cell resistance
//! deviations in the circuit simulator must stay inside the model's
//! `(1 ± σ)` envelope (the paper reports this verification "is similar to
//! that shown in Fig. 5").

use mnsim_core::accuracy::{fit_wire_coefficient, measure_variation};
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::Resistance;

use super::row;

/// Runs the Monte-Carlo envelope check.
///
/// # Errors
///
/// Propagates circuit failures.
pub fn run(sizes: &[usize], sigma: f64, runs: usize) -> Result<String, Box<dyn std::error::Error>> {
    let device = MemristorModel::rram_default();
    let rs = Resistance::from_ohms(10.0);
    let node = InterconnectNode::N28;
    let fit = fit_wire_coefficient(&device, node, rs, sizes)?;
    let model = fit.model(rs);

    let mut out = String::new();
    out.push_str(&format!(
        "Device-variation verification (sigma = {:.0} %, {} Monte-Carlo runs per size, 28 nm wires)\n\n",
        sigma * 100.0,
        runs
    ));
    out.push_str(&row(
        "size",
        &sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));

    let mut nominal = Vec::new();
    let mut envelope = Vec::new();
    let mut observed = Vec::new();
    let mut verdicts = Vec::new();
    for (i, &size) in sizes.iter().enumerate() {
        let sample =
            measure_variation(&model, &device, node, rs, size, sigma, runs, 4242 + i as u64)?;
        nominal.push(format!("{:.2}", sample.model_nominal * 100.0));
        envelope.push(format!("{:.2}", sample.model_with_variation * 100.0));
        observed.push(format!(
            "{:.2}..{:.2}",
            sample.min_error * 100.0,
            sample.max_error * 100.0
        ));
        verdicts.push(if sample.within_envelope(0.05) { "ok" } else { "OUT" }.to_string());
    }
    out.push_str(&row("model nominal (%)", &nominal));
    out.push_str(&row("model with variation (%)", &envelope));
    out.push_str(&row("Monte-Carlo range (%)", &observed));
    out.push_str(&row("within envelope (+/-5 pts)", &verdicts));
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_and_stays_in_envelope() {
        let text = super::run(&[8, 16], 0.2, 6).unwrap();
        assert!(text.contains("Monte-Carlo"));
        assert!(!text.contains("OUT"), "{text}");
    }
}
