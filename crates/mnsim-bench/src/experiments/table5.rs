//! **Table V** — the trade-off between area, energy and accuracy over
//! crossbar sizes (256 → 8) at the 45 nm interconnect node.
//!
//! Paper shape: error rate is smallest at a middle crossbar size (wires
//! hurt big arrays, the non-linear V-I characteristic hurts small ones),
//! while area and energy fall monotonically as crossbars grow.

use mnsim_core::simulate::simulate;
use mnsim_tech::interconnect::InterconnectNode;

use super::{large_bank_config, row};

/// The paper's size sweep.
pub const SIZES: [usize; 6] = [256, 128, 64, 32, 16, 8];

/// Runs the sweep and renders the table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let mut base = large_bank_config();
    base.interconnect = InterconnectNode::N45;

    let mut out = String::new();
    out.push_str("Table V — crossbar-size trade-off (2048x1024 layer, 45 nm wires)\n\n");
    out.push_str(&row(
        "crossbar size",
        &SIZES.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));

    let mut errors = Vec::new();
    let mut areas = Vec::new();
    let mut energies = Vec::new();
    for &size in &SIZES {
        let mut config = base.clone();
        config.crossbar_size = size;
        let report = simulate(&config)?;
        errors.push(format!("{:.2}", report.worst_crossbar_epsilon * 100.0));
        areas.push(format!("{:.2}", report.total_area.square_millimeters()));
        energies.push(format!("{:.2}", report.energy_per_sample.microjoules()));
    }
    out.push_str(&row("error rate (%)", &errors));
    out.push_str(&row("area (mm^2)", &areas));
    out.push_str(&row("energy (uJ)", &energies));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn area_and_energy_fall_as_crossbars_grow() {
        // Regenerate the table data and assert the paper's monotone trends.
        let mut base = large_bank_config();
        base.interconnect = InterconnectNode::N45;
        let mut prev_area = f64::INFINITY;
        let mut prev_energy = f64::INFINITY;
        for &size in &[8usize, 32, 128] {
            let mut config = base.clone();
            config.crossbar_size = size;
            let report = simulate(&config).unwrap();
            let area = report.total_area.square_meters();
            let energy = report.energy_per_sample.joules();
            assert!(area < prev_area, "area must fall as size grows");
            assert!(energy < prev_energy, "energy must fall as size grows");
            prev_area = area;
            prev_energy = energy;
        }
    }

    #[test]
    fn error_is_worst_at_the_largest_size() {
        let mut base = large_bank_config();
        base.interconnect = InterconnectNode::N45;
        let eps = |size: usize| {
            let mut config = base.clone();
            config.crossbar_size = size;
            simulate(&config).unwrap().worst_crossbar_epsilon
        };
        // The paper's wire-dominated end: 256 is worse than 64.
        assert!(eps(256) > eps(64));
    }

    #[test]
    fn renders() {
        let text = run().unwrap();
        assert!(text.contains("Table V"));
        assert!(text.contains("error rate"));
    }
}
