//! **Table VII** — case studies of two published designs simulated through
//! MNSIM's customization interfaces: the PRIME FF-subarray (65 nm) and the
//! ISAAC tile (32 nm, 22-stage inner pipeline, imported eDRAM/ADC/S&H
//! modules). As in the paper, the two columns are not comparable with each
//! other (different scales and structures).

use mnsim_core::custom::isaac::simulate_isaac;
use mnsim_core::custom::prime::simulate_prime;
use mnsim_core::custom::CustomReport;

use super::row;

/// Runs both case studies and renders the table.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let prime = simulate_prime()?;
    let isaac = simulate_isaac()?;

    let mut out = String::new();
    out.push_str("Table VII — simulation of PRIME and ISAAC through customization\n");
    out.push_str("(columns are not comparable with each other, as in the paper)\n\n");
    out.push_str(&row("work", &["PRIME".into(), "ISAAC".into()]));
    out.push_str(&row("CMOS tech", &["65 nm".into(), "32 nm".into()]));
    out.push_str(&row(
        "structure",
        &["FF-subarray".into(), "ISAAC tile".into()],
    ));
    let metric = |f: &dyn Fn(&CustomReport) -> String| -> Vec<String> {
        vec![f(&prime), f(&isaac)]
    };
    out.push_str(&row(
        "area (mm^2)",
        &metric(&|r| format!("{:.3}", r.area.square_millimeters())),
    ));
    out.push_str(&row(
        "energy per task (uJ)",
        &metric(&|r| format!("{:.3}", r.energy_per_task.microjoules())),
    ));
    out.push_str(&row(
        "latency (us)",
        &metric(&|r| format!("{:.3}", r.latency.microseconds())),
    ));
    out.push_str(&row(
        "accuracy (%)",
        &metric(&|r| format!("{:.1}", r.relative_accuracy * 100.0)),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_both_columns() {
        let text = super::run().unwrap();
        assert!(text.contains("PRIME"));
        assert!(text.contains("ISAAC"));
        assert!(text.contains("FF-subarray"));
        assert!(text.contains("accuracy"));
    }
}
