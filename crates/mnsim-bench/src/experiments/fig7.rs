//! **Fig. 7** — influence of the computation parallelism degree on area
//! and latency, per crossbar size, normalized by each size's maximum
//! (paper shape: latency rises steeply as the parallelism drops, area
//! falls, and the area gain saturates for large crossbars because neurons
//! and peripheral circuits dominate).

use mnsim_core::simulate::simulate;

use super::{large_bank_config, row};

/// The per-size parallelism sweep results.
#[derive(Debug, Clone)]
pub struct SweepSeries {
    /// Crossbar size of this series.
    pub crossbar_size: usize,
    /// Parallelism degrees swept.
    pub degrees: Vec<usize>,
    /// Normalized area per degree (max = 1).
    pub normalized_area: Vec<f64>,
    /// Normalized latency per degree (max = 1).
    pub normalized_latency: Vec<f64>,
}

/// Runs the sweep over the given sizes and degrees.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn sweep(
    sizes: &[usize],
    degrees: &[usize],
) -> Result<Vec<SweepSeries>, Box<dyn std::error::Error>> {
    let base = large_bank_config();
    let mut series = Vec::new();
    for &size in sizes {
        let mut areas = Vec::new();
        let mut latencies = Vec::new();
        let mut used_degrees = Vec::new();
        for &p in degrees {
            if p > size {
                continue;
            }
            let mut config = base.clone();
            config.crossbar_size = size;
            config.parallelism = p;
            let report = simulate(&config)?;
            areas.push(report.total_area.square_meters());
            latencies.push(report.sample_latency.seconds());
            used_degrees.push(p);
        }
        let max_area = areas.iter().cloned().fold(0.0, f64::max);
        let max_latency = latencies.iter().cloned().fold(0.0, f64::max);
        series.push(SweepSeries {
            crossbar_size: size,
            degrees: used_degrees,
            normalized_area: areas.iter().map(|a| a / max_area).collect(),
            normalized_latency: latencies.iter().map(|l| l / max_latency).collect(),
        });
    }
    Ok(series)
}

/// Runs the paper's sweep and renders the normalized curves.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let sizes = [64usize, 128, 256, 512];
    let degrees = [1usize, 2, 4, 8, 16, 32, 64, 128, 256, 512];
    let series = sweep(&sizes, &degrees)?;

    let mut out = String::new();
    out.push_str(
        "Fig. 7 — parallelism degree vs normalized area and latency (per crossbar size)\n\n",
    );
    for s in &series {
        out.push_str(&format!("crossbar size {}\n", s.crossbar_size));
        out.push_str(&row(
            "  parallelism",
            &s.degrees.iter().map(|d| d.to_string()).collect::<Vec<_>>(),
        ));
        out.push_str(&row(
            "  area (norm)",
            &s.normalized_area
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>(),
        ));
        out.push_str(&row(
            "  latency (norm)",
            &s.normalized_latency
                .iter()
                .map(|v| format!("{v:.3}"))
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_falls_area_rises_with_parallelism() {
        let series = sweep(&[128], &[1, 16, 128]).unwrap();
        let s = &series[0];
        // Latency is maximal at p = 1 and falls with parallelism.
        assert_eq!(s.normalized_latency[0], 1.0);
        assert!(s.normalized_latency[2] < s.normalized_latency[0]);
        // Area is maximal fully parallel and falls as circuits are shared.
        assert_eq!(*s.normalized_area.last().unwrap(), 1.0);
        assert!(s.normalized_area[0] < 1.0);
    }

    #[test]
    fn area_reduction_saturates_for_large_crossbars() {
        // The paper: with large crossbars the neurons/peripheral circuits
        // dominate, limiting the gain from sharing read circuits.
        let series = sweep(&[64, 512], &[1, 64]).unwrap();
        let span = |s: &SweepSeries| s.normalized_area[1] - s.normalized_area[0];
        let small = span(&series[0]);
        let large = span(&series[1]);
        assert!(
            large < small,
            "area span at size 512 ({large:.3}) should be below size 64 ({small:.3})"
        );
    }
}
