//! **Table III** — simulation time of the circuit-level solver vs MNSIM's
//! behavior-level evaluation over crossbar sizes, and the resulting
//! speed-up (the paper reports >7000× against HSPICE).

use mnsim_core::validate::measure_speedup;

use super::{row, table2_config};

/// Runs the experiment over the paper's sizes (16–256), returning the
/// rendered table.
///
/// # Errors
///
/// Propagates circuit failures.
pub fn run(sizes: &[usize]) -> Result<String, Box<dyn std::error::Error>> {
    let config = table2_config();
    let mut out = String::new();
    out.push_str("Table III — simulation time, circuit solver vs MNSIM\n\n");
    out.push_str(&row(
        "crossbar size",
        &sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));

    let rows = measure_speedup(&config, sizes)?;
    out.push_str(&row(
        "circuit (s)",
        &rows
            .iter()
            .map(|r| format!("{:.4}", r.circuit_seconds))
            .collect::<Vec<_>>(),
    ));
    out.push_str(&row(
        "MNSIM (s)",
        &rows
            .iter()
            .map(|r| format!("{:.7}", r.mnsim_seconds))
            .collect::<Vec<_>>(),
    ));
    out.push_str(&row(
        "speed-up",
        &rows
            .iter()
            .map(|r| format!("{:.0}x", r.speedup()))
            .collect::<Vec<_>>(),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_for_small_sizes() {
        let text = super::run(&[16, 32]).unwrap();
        assert!(text.contains("Table III"));
        assert!(text.contains("speed-up"));
    }
}
