//! **Table II** — validation of the behavior-level models against the
//! circuit-level simulator for the 3-layer 128×128 fully-connected NN at
//! 90 nm.
//!
//! The paper compares computation power, read power, computation energy,
//! latency and average relative accuracy against HSPICE, with all errors
//! below 10 %. Our circuit baseline is the `mnsim-circuit` non-linear DC
//! solver; the latency row compares the model against the analytic Elmore
//! settling of the same netlist (DC-solver substitution, see `DESIGN.md`).

use mnsim_core::simulate::simulate;
use mnsim_core::validate::validate_against_circuit;

use super::{row, table2_config};

/// Runs the experiment, returning the rendered table.
///
/// `matrices`/`inputs` control the random-sample count (the paper uses
/// 20 × 100; the default harness uses a smaller, statistically equivalent
/// sample to keep runtimes interactive).
///
/// # Errors
///
/// Propagates simulation/circuit errors as a rendered message.
pub fn run(matrices: usize, inputs: usize) -> Result<String, Box<dyn std::error::Error>> {
    let config = table2_config();
    let mut out = String::new();
    out.push_str("Table II — validation against the circuit-level simulator\n");
    out.push_str(&format!(
        "(3-layer fully-connected NN, two 128x128 layers, 90 nm CMOS, {matrices} weight samples x {inputs} inputs)\n\n"
    ));
    out.push_str(&row(
        "metric",
        &["MNSIM".into(), "circuit".into(), "error %".into()],
    ));

    let rows = validate_against_circuit(&config, matrices, inputs, 20160318)?;
    for r in &rows {
        out.push_str(&row(
            &format!("{} [{}]", r.metric, r.unit),
            &[
                format!("{:.4}", r.mnsim),
                format!("{:.4}", r.circuit),
                format!("{:+.2}", r.relative_error() * 100.0),
            ],
        ));
    }

    // Computation energy of the 3-layer ANN (model side; the paper's row
    // derives from the same power × latency product).
    let report = simulate(&config)?;
    out.push_str(&row(
        "computation energy (3-layer ANN) [uJ]",
        &[
            format!("{:.4}", report.energy_per_sample.microjoules()),
            "-".into(),
            "-".into(),
        ],
    ));
    out.push_str(&row(
        "sample latency [ns]",
        &[
            format!("{:.2}", report.sample_latency.nanoseconds()),
            "-".into(),
            "-".into(),
        ],
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_with_small_sample() {
        let text = super::run(1, 1).unwrap();
        assert!(text.contains("Table II"));
        assert!(text.contains("computation power"));
        assert!(text.contains("average relative accuracy"));
    }
}
