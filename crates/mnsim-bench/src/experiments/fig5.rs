//! **Fig. 5** — error-rate fit curves of output voltages with different
//! crossbar sizes and interconnect technology nodes: circuit-simulated
//! scatter points vs the fitted behavior-level model, with the per-curve
//! RMSE (the paper quotes < 0.01).

use mnsim_core::accuracy::fit_wire_coefficient;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::Resistance;

use super::row;

/// Runs the fit for each interconnect node over the given sizes and
/// renders measured-vs-modeled points plus the RMSE.
///
/// # Errors
///
/// Propagates circuit failures.
pub fn run(
    nodes: &[InterconnectNode],
    sizes: &[usize],
) -> Result<String, Box<dyn std::error::Error>> {
    let device = MemristorModel::rram_default();
    let sense = Resistance::from_ohms(10.0);

    let mut out = String::new();
    out.push_str("Fig. 5 — output-voltage error-rate curves, circuit scatter vs fitted model\n");
    out.push_str("(worst case: all cells at R_min; farthest column)\n\n");

    for &node in nodes {
        let fit = fit_wire_coefficient(&device, node, sense, sizes)?;
        out.push_str(&format!(
            "{node}: fitted wire coefficient {:.4}, RMSE {:.5} {}\n",
            fit.coefficient,
            fit.rmse,
            if fit.rmse < 0.01 {
                "(< 0.01, paper criterion met)"
            } else {
                "(above the paper's 0.01 criterion)"
            }
        ));
        out.push_str(&row(
            "  size",
            &fit.points.iter().map(|p| p.size.to_string()).collect::<Vec<_>>(),
        ));
        out.push_str(&row(
            "  circuit error (%)",
            &fit.points
                .iter()
                .map(|p| format!("{:.2}", p.measured * 100.0))
                .collect::<Vec<_>>(),
        ));
        out.push_str(&row(
            "  model error (%)",
            &fit.points
                .iter()
                .map(|p| format!("{:.2}", p.modeled * 100.0))
                .collect::<Vec<_>>(),
        ));
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_meets_rmse_for_one_node() {
        let text = run(&[InterconnectNode::N28], &[8, 16, 32]).unwrap();
        assert!(text.contains("Fig. 5"));
        assert!(text.contains("fitted wire coefficient"));
        assert!(text.contains("criterion met"));
    }
}
