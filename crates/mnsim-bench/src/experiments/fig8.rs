//! **Fig. 8** — the area-latency trade-off across parallelism degrees and
//! crossbar sizes (paper shape: each size traces a curve with an
//! inflection point — large area reductions are available for little
//! latency at first, then latency explodes).

use mnsim_core::simulate::simulate;

use super::large_bank_config;

/// One point of a trade-off curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TradeoffPoint {
    /// Parallelism degree.
    pub parallelism: usize,
    /// Area in mm².
    pub area_mm2: f64,
    /// Latency in µs.
    pub latency_us: f64,
}

/// Computes the trade-off curve for one crossbar size.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn curve(
    size: usize,
    degrees: &[usize],
) -> Result<Vec<TradeoffPoint>, Box<dyn std::error::Error>> {
    let base = large_bank_config();
    let mut points = Vec::new();
    for &p in degrees {
        if p > size {
            continue;
        }
        let mut config = base.clone();
        config.crossbar_size = size;
        config.parallelism = p;
        let report = simulate(&config)?;
        points.push(TradeoffPoint {
            parallelism: p,
            area_mm2: report.total_area.square_millimeters(),
            latency_us: report.sample_latency.microseconds(),
        });
    }
    Ok(points)
}

/// Index of the inflection (knee) point of a curve: the point maximizing
/// the distance to the straight line between the curve's endpoints in
/// normalized coordinates.
pub fn knee_index(points: &[TradeoffPoint]) -> usize {
    if points.len() < 3 {
        return 0;
    }
    let (a0, l0) = (points[0].area_mm2, points[0].latency_us);
    let (a1, l1) = (
        points[points.len() - 1].area_mm2,
        points[points.len() - 1].latency_us,
    );
    let norm = |p: &TradeoffPoint| {
        (
            (p.area_mm2 - a0) / (a1 - a0 + f64::EPSILON),
            (p.latency_us - l0) / (l1 - l0 + f64::EPSILON),
        )
    };
    points
        .iter()
        .enumerate()
        .map(|(i, p)| {
            let (x, y) = norm(p);
            // Distance to the x + y = diagonal chord (endpoints map to
            // (0,0) and (1,1)).
            (i, (x - y).abs())
        })
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

/// Runs the paper's sweep and renders the curves with knee markers.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let degrees = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut out = String::new();
    out.push_str("Fig. 8 — area vs latency trade-off per crossbar size\n\n");
    for &size in &[64usize, 128, 256] {
        let points = curve(size, &degrees)?;
        let knee = knee_index(&points);
        out.push_str(&format!("crossbar size {size}\n"));
        for (i, p) in points.iter().enumerate() {
            out.push_str(&format!(
                "  p={:<4} area {:>10.2} mm^2   latency {:>10.3} us{}\n",
                p.parallelism,
                p.area_mm2,
                p.latency_us,
                if i == knee { "   <- inflection" } else { "" }
            ));
        }
        out.push('\n');
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_is_monotone_tradeoff() {
        let points = curve(128, &[1, 8, 64, 128]).unwrap();
        for pair in points.windows(2) {
            assert!(pair[1].area_mm2 >= pair[0].area_mm2);
            assert!(pair[1].latency_us <= pair[0].latency_us);
        }
    }

    #[test]
    fn knee_is_interior_for_convex_curves() {
        let points = curve(128, &[1, 2, 4, 8, 16, 32, 64, 128]).unwrap();
        let knee = knee_index(&points);
        assert!(knee > 0 && knee < points.len() - 1, "knee at {knee}");
    }

    #[test]
    fn knee_of_tiny_curves_is_zero() {
        let points = vec![
            TradeoffPoint {
                parallelism: 1,
                area_mm2: 1.0,
                latency_us: 2.0,
            };
            2
        ];
        assert_eq!(knee_index(&points), 0);
    }
}
