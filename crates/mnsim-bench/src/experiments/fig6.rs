//! **Fig. 6** — layout-area validation of the crossbar + computation-
//! oriented decoder (32×32 1T1R, 130 nm).
//!
//! The paper measures 3420 µm² from its layout against a 2251 µm² model
//! estimate, and folds the ratio back in as a calibration coefficient. We
//! reproduce the flow: raw model estimate → calibration coefficient →
//! calibrated estimate (the layout itself is the documented substitution:
//! `raw × 1.519`).

use mnsim_core::modules::crossbar::{CrossbarModel, AREA_CALIBRATION};
use mnsim_core::modules::decoder::compute_decoder;
use mnsim_tech::cmos::CmosNode;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;

/// Runs the area validation and renders the comparison.
pub fn run() -> String {
    let mut device = MemristorModel::rram_default();
    device.feature_nm = 130;
    let cmos = CmosNode::N130.params();

    let mut uncalibrated = CrossbarModel::new(32, &device, InterconnectNode::N90);
    uncalibrated.area_calibration = 1.0;
    let raw = uncalibrated.area().square_micrometers()
        + 2.0 * compute_decoder(&cmos, 32).area.square_micrometers();

    let calibrated = raw * AREA_CALIBRATION;
    // Our "layout" stand-in is the calibrated value (see DESIGN.md): the
    // paper's own layout exceeds its raw estimate by exactly this ratio.
    let layout = calibrated;

    format!(
        "Fig. 6 — layout-area validation (32x32 1T1R crossbar + decoders, 130 nm)\n\n\
         raw model estimate:        {raw:>10.1} um^2   (paper: 2251 um^2)\n\
         layout (substitute):       {layout:>10.1} um^2   (paper: 3420 um^2)\n\
         calibration coefficient:   {AREA_CALIBRATION:>10.3}      (paper: 3420/2251 = 1.519)\n\
         calibrated estimate:       {calibrated:>10.1} um^2\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_exceeds_raw_by_the_fig6_ratio() {
        let text = run();
        assert!(text.contains("calibration coefficient"));
        assert!(text.contains("1.519"));
    }

    #[test]
    fn raw_estimate_same_order_as_paper() {
        // 32×32 1T1R at 130 nm: 1024 cells × 9 F² ≈ 156 µm² of cells plus
        // decoders; the paper's 2251 µm² includes peripheral overheads.
        let mut device = MemristorModel::rram_default();
        device.feature_nm = 130;
        let mut m = CrossbarModel::new(32, &device, InterconnectNode::N90);
        m.area_calibration = 1.0;
        let cells = m.area().square_micrometers();
        assert!(cells > 50.0 && cells < 1000.0, "{cells}");
    }
}
