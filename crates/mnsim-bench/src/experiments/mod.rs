//! One module per regenerated table/figure, plus shared configuration
//! helpers.

pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod jpeg;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod variation;

use mnsim_core::config::{Config, Precision};
use mnsim_nn::models;
use mnsim_tech::cmos::CmosNode;

/// The paper's Table II validation setup: a 3-layer fully-connected NN
/// with two 128×128 network layers, 90 nm CMOS.
pub fn table2_config() -> Config {
    let mut config =
        Config::for_network(models::mlp(&[128, 128, 128]).expect("static dims"));
    config.cmos = CmosNode::N90;
    config.crossbar_size = 128;
    config
}

/// The paper's §VII.C large-computation-bank setup: one 2048×1024 layer,
/// 45 nm CMOS, 4-bit signed weights, 8-bit signals, 7-bit cells.
pub fn large_bank_config() -> Config {
    let mut config = Config::for_network(models::large_bank_layer());
    config.cmos = CmosNode::N45;
    config.precision = Precision {
        input_bits: 8,
        weight_bits: 4,
        output_bits: 8,
    };
    config.device.bits_per_cell = 7;
    config
}

/// Renders a labelled numeric table row.
pub fn row(label: &str, values: &[String]) -> String {
    let mut line = format!("{label:<34}");
    for v in values {
        line.push_str(&format!("{v:>14}"));
    }
    line.push('\n');
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configs_validate() {
        table2_config().validate().unwrap();
        large_bank_config().validate().unwrap();
    }

    #[test]
    fn table2_config_matches_paper() {
        let c = table2_config();
        assert_eq!(c.network.depth(), 2);
        assert_eq!(c.cmos, CmosNode::N90);
    }

    #[test]
    fn large_bank_matches_paper() {
        let c = large_bank_config();
        assert_eq!(c.network.total_weights(), 2048 * 1024);
        assert_eq!(c.precision.weight_bits, 4);
        assert_eq!(c.device.bits_per_cell, 7);
    }

    #[test]
    fn row_formatting() {
        let r = row("label", &["1.0".into(), "2.0".into()]);
        assert!(r.contains("label"));
        assert!(r.ends_with('\n'));
    }
}
