//! **Table VI** — design-space exploration of the VGG-16 CNN (error
//! constraint relaxed to 50 %, interconnect range enlarged to 90 nm).
//!
//! Latency is reported per pipeline cycle — the largest computation
//! bank's cycle — because the multi-layer accelerator is pipelined
//! (paper §VII.D).

use mnsim_core::config::Config;
use mnsim_core::dse::{explore_with, Constraints, DesignPoint, DesignSpace, Objective};
use mnsim_core::exec::ExecOptions;

use super::row;

/// Runs the traversal and renders the four optimum columns.
///
/// # Errors
///
/// Propagates exploration errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let base = Config::vgg16_cnn();
    let space = DesignSpace::paper_cnn();
    let constraints = Constraints::crossbar_error(0.50);
    let start = std::time::Instant::now();
    let result = explore_with(&base, &space, &constraints, &ExecOptions::default())?;
    let elapsed = start.elapsed();

    let mut out = String::new();
    out.push_str("Table VI — design space exploration of the VGG-16 CNN\n");
    out.push_str(&format!(
        "(8-bit data, 45 nm CMOS, crossbar error <= 50 %; {} designs in {:.2?}, {} feasible)\n\n",
        result.evaluated,
        elapsed,
        result.feasible.len()
    ));

    let columns: Vec<&DesignPoint> = Objective::TABLE_COLUMNS
        .iter()
        .map(|&obj| {
            if obj == Objective::Accuracy {
                result
                    .best_with_secondary(Objective::Accuracy, Objective::Area)
                    .expect("feasible set non-empty")
            } else {
                result.best(obj).expect("feasible set non-empty")
            }
        })
        .collect();

    out.push_str(&row(
        "optimized for",
        &Objective::TABLE_COLUMNS
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>(),
    ));
    let fmt = |f: &dyn Fn(&DesignPoint) -> String| -> Vec<String> {
        columns.iter().map(|p| f(p)).collect()
    };
    out.push_str(&row(
        "area (mm^2)",
        &fmt(&|p| format!("{:.1}", p.report.total_area.square_millimeters())),
    ));
    out.push_str(&row(
        "energy per sample (mJ)",
        &fmt(&|p| format!("{:.3}", p.report.energy_per_sample.millijoules())),
    ));
    out.push_str(&row(
        "latency per pipeline cycle (us)",
        &fmt(&|p| format!("{:.4}", p.report.pipeline_cycle.microseconds())),
    ));
    out.push_str(&row(
        "error rate of output (%)",
        &fmt(&|p| format!("{:.2}", p.report.output_max_error_rate * 100.0)),
    ));
    out.push_str(&row(
        "power (W)",
        &fmt(&|p| format!("{:.2}", p.report.power.watts())),
    ));
    out.push_str(&row(
        "crossbar size",
        &fmt(&|p| p.crossbar_size.to_string()),
    ));
    out.push_str(&row(
        "line tech node (nm)",
        &fmt(&|p| p.interconnect.nanometers().to_string()),
    ));
    out.push_str(&row(
        "parallelism degree",
        &fmt(&|p| p.parallelism.to_string()),
    ));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_core::dse::explore;

    #[test]
    fn reduced_vgg_sweep_is_feasible_under_50_percent() {
        let base = Config::vgg16_cnn();
        let space = DesignSpace {
            crossbar_sizes: vec![64, 128],
            parallelism_degrees: vec![64],
            interconnects: vec![
                mnsim_tech::interconnect::InterconnectNode::N45,
                mnsim_tech::interconnect::InterconnectNode::N90,
            ],
        };
        let result = explore(&base, &space, &Constraints::crossbar_error(0.50)).unwrap();
        assert!(!result.feasible.is_empty());
        // Pipeline cycle must be shorter than a whole VGG-16 sample pass.
        let p = &result.feasible[0];
        assert!(
            p.report.pipeline_cycle.seconds() < p.report.sample_latency.seconds() / 10.0
        );
    }
}
