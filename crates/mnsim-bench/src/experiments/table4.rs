//! **Table IV** — design-space exploration of the large computation bank
//! (a 2048×1024 fully-connected layer): the optimal design for each of the
//! four targets (area / energy / latency / computation accuracy) under a
//! 25 % crossbar-error constraint.

use mnsim_core::dse::{explore_with, Constraints, DesignPoint, DesignSpace, Objective};
use mnsim_core::exec::ExecOptions;

use super::{large_bank_config, row};

/// Runs the traversal (the paper's thousands of designs) and renders the
/// four optimum columns.
///
/// # Errors
///
/// Propagates exploration errors (e.g. an infeasibly tight constraint).
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let base = large_bank_config();
    let space = DesignSpace::paper_large_bank();
    let constraints = Constraints::crossbar_error(0.25);
    let start = std::time::Instant::now();
    let result = explore_with(&base, &space, &constraints, &ExecOptions::default())?;
    let elapsed = start.elapsed();

    let mut out = String::new();
    out.push_str("Table IV — design space exploration of the large computation bank\n");
    out.push_str(&format!(
        "(2048x1024 layer, 45 nm CMOS, crossbar error <= 25 %; {} designs evaluated in {:.2?}, {} feasible)\n\n",
        result.evaluated,
        elapsed,
        result.feasible.len()
    ));

    let columns: Vec<&DesignPoint> = Objective::TABLE_COLUMNS
        .iter()
        .map(|&obj| {
            if obj == Objective::Accuracy {
                result
                    .best_with_secondary(Objective::Accuracy, Objective::Area)
                    .expect("feasible set non-empty")
            } else {
                result.best(obj).expect("feasible set non-empty")
            }
        })
        .collect();

    out.push_str(&row(
        "optimized for",
        &Objective::TABLE_COLUMNS
            .iter()
            .map(|o| o.to_string())
            .collect::<Vec<_>>(),
    ));
    out.push_str(&render_design_rows(&columns));
    Ok(out)
}

/// Renders the shared Table IV/VI metric rows for a set of design columns.
pub fn render_design_rows(columns: &[&DesignPoint]) -> String {
    let mut out = String::new();
    let fmt = |f: &dyn Fn(&DesignPoint) -> String| -> Vec<String> {
        columns.iter().map(|p| f(p)).collect()
    };
    out.push_str(&row(
        "area (mm^2)",
        &fmt(&|p| format!("{:.2}", p.report.total_area.square_millimeters())),
    ));
    out.push_str(&row(
        "energy per sample (uJ)",
        &fmt(&|p| format!("{:.3}", p.report.energy_per_sample.microjoules())),
    ));
    out.push_str(&row(
        "latency (us)",
        &fmt(&|p| format!("{:.4}", p.report.sample_latency.microseconds())),
    ));
    out.push_str(&row(
        "error rate of output (%)",
        &fmt(&|p| format!("{:.2}", p.report.output_max_error_rate * 100.0)),
    ));
    out.push_str(&row(
        "power (W)",
        &fmt(&|p| format!("{:.3}", p.report.power.watts())),
    ));
    out.push_str(&row(
        "crossbar size",
        &fmt(&|p| p.crossbar_size.to_string()),
    ));
    out.push_str(&row(
        "line tech node (nm)",
        &fmt(&|p| p.interconnect.nanometers().to_string()),
    ));
    out.push_str(&row(
        "parallelism degree",
        &fmt(&|p| p.parallelism.to_string()),
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_core::dse::explore;

    #[test]
    fn reduced_sweep_produces_distinct_optima() {
        // A reduced space keeps the test quick while still showing that
        // different targets pick different designs (the paper's point).
        let base = large_bank_config();
        let space = DesignSpace {
            crossbar_sizes: vec![64, 128, 256],
            parallelism_degrees: vec![1, 32, 128],
            interconnects: vec![
                mnsim_tech::interconnect::InterconnectNode::N28,
                mnsim_tech::interconnect::InterconnectNode::N45,
            ],
        };
        let result = explore(&base, &space, &Constraints::crossbar_error(0.5)).unwrap();
        let area = result.best(Objective::Area).unwrap();
        let latency = result.best(Objective::Latency).unwrap();
        assert!(
            area.report.total_area.square_meters()
                <= latency.report.total_area.square_meters()
        );
        assert!(
            latency.report.sample_latency.seconds() <= area.report.sample_latency.seconds()
        );
        let text = render_design_rows(&[area, latency]);
        assert!(text.contains("crossbar size"));
    }
}
