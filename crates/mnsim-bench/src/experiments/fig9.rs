//! **Fig. 9** — the five-axis "pentagon" comparison of the four per-metric
//! optimal designs: reciprocal area, energy efficiency, reciprocal power,
//! speed, and accuracy, each normalized by the best value among the four
//! designs, for (a) the large computation bank and (b) the VGG-16 CNN.

use mnsim_core::config::Config;
use mnsim_core::dse::{explore_with, Constraints, DesignPoint, DesignSpace, Objective};
use mnsim_core::exec::ExecOptions;

use super::{large_bank_config, row};

/// The five normalized pentagon axes of one design.
#[derive(Debug, Clone)]
pub struct Pentagon {
    /// Which objective this design optimized.
    pub optimized_for: Objective,
    /// `[1/area, 1/energy, 1/power, 1/latency, accuracy]`, each normalized
    /// to the best across the compared designs.
    pub axes: [f64; 5],
}

/// Axis labels of the pentagon.
pub const AXES: [&str; 5] = [
    "1/area",
    "energy efficiency",
    "1/power",
    "speed",
    "accuracy",
];

/// Builds the normalized pentagons for the four table optima.
pub fn pentagons(points: &[&DesignPoint]) -> Vec<Pentagon> {
    let raw: Vec<[f64; 5]> = points
        .iter()
        .map(|p| {
            [
                1.0 / p.report.total_area.square_millimeters(),
                1.0 / p.report.energy_per_sample.microjoules(),
                1.0 / p.report.power.watts(),
                1.0 / p.report.sample_latency.microseconds(),
                1.0 - p.report.output_max_error_rate,
            ]
        })
        .collect();
    let mut best = [0.0f64; 5];
    for axes in &raw {
        for (b, v) in best.iter_mut().zip(axes) {
            *b = b.max(*v);
        }
    }
    raw.into_iter()
        .zip(Objective::TABLE_COLUMNS)
        .map(|(axes, objective)| Pentagon {
            optimized_for: objective,
            axes: std::array::from_fn(|i| axes[i] / best[i]),
        })
        .collect()
}

fn render(title: &str, pens: &[Pentagon]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&row(
        "design \\ axis",
        &AXES.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    for p in pens {
        out.push_str(&row(
            &format!("optimal {}", p.optimized_for),
            &p.axes.iter().map(|v| format!("{v:.3}")).collect::<Vec<_>>(),
        ));
    }
    out.push('\n');
    out
}

fn four_optima(result: &mnsim_core::dse::DseResult) -> Vec<&DesignPoint> {
    Objective::TABLE_COLUMNS
        .iter()
        .map(|&obj| {
            if obj == Objective::Accuracy {
                result
                    .best_with_secondary(Objective::Accuracy, Objective::Area)
                    .expect("feasible set non-empty")
            } else {
                result.best(obj).expect("feasible set non-empty")
            }
        })
        .collect()
}

/// Runs both sub-figures and renders the normalized axis tables.
///
/// # Errors
///
/// Propagates exploration errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let options = ExecOptions::default();
    let bank = explore_with(
        &large_bank_config(),
        &DesignSpace::paper_large_bank(),
        &Constraints::crossbar_error(0.25),
        &options,
    )?;
    let cnn = explore_with(
        &Config::vgg16_cnn(),
        &DesignSpace::paper_cnn(),
        &Constraints::crossbar_error(0.50),
        &options,
    )?;

    let mut out = String::new();
    out.push_str("Fig. 9 — normalized five-axis comparison of the four optimal designs\n\n");
    out.push_str(&render(
        "(a) large computation bank",
        &pentagons(&four_optima(&bank)),
    ));
    out.push_str(&render("(b) VGG-16 CNN", &pentagons(&four_optima(&cnn))));
    out.push_str(
        "Shape check: each row holds a 1.000 on its own axis; the spread across rows\n\
         is larger for the single bank than for the full CNN (the paper's observation\n\
         that the entire network case shows smaller differences).\n",
    );
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_core::dse::explore;

    #[test]
    fn pentagons_are_normalized() {
        let base = large_bank_config();
        let space = DesignSpace {
            crossbar_sizes: vec![64, 256],
            parallelism_degrees: vec![1, 64],
            interconnects: vec![mnsim_tech::interconnect::InterconnectNode::N45],
        };
        let result = explore(&base, &space, &Constraints::default()).unwrap();
        let pens = pentagons(&four_optima(&result));
        assert_eq!(pens.len(), 4);
        for p in &pens {
            for &v in &p.axes {
                assert!((0.0..=1.0 + 1e-12).contains(&v), "axis value {v}");
            }
        }
        // Every axis has at least one design at 1.0.
        for i in 0..5 {
            assert!(pens.iter().any(|p| (p.axes[i] - 1.0).abs() < 1e-12));
        }
        // The area-optimal design tops the 1/area axis.
        assert!((pens[0].axes[0] - 1.0).abs() < 1e-12);
    }
}
