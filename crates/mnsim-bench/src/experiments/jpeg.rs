//! **§VII.A (accuracy validation)** — the JPEG-encoding-style application:
//! a 64-16-64 autoencoder (after Li et al.'s RRAM approximate computing)
//! trained on 8×8 smooth patches. The behavior-level accuracy model
//! predicts the average output deviation; injecting exactly the predicted
//! per-layer digital deviation into a real quantized inference must land
//! within ~1 % of the prediction (the paper: "the error rate of accuracy
//! model is less than 1 %").

use mnsim_core::accuracy::{propagate, AccuracyModel, Case};
use mnsim_core::config::Config;
use mnsim_nn::data::smooth_patches;
use mnsim_nn::layers::{Activation, Layer};
use mnsim_nn::noise::{inject_digital_deviation, relative_accuracy};
use mnsim_nn::quantize::Quantizer;
use mnsim_nn::tensor::Tensor;
use mnsim_nn::train::Mlp;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The result of the application-level accuracy validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JpegResult {
    /// Autoencoder training loss after the final epoch.
    pub final_training_loss: f64,
    /// Model-predicted average relative accuracy (1 − avg error rate).
    pub predicted_accuracy: f64,
    /// Measured average relative accuracy with injected deviations.
    pub measured_accuracy: f64,
}

impl JpegResult {
    /// |predicted − measured| in percentage points — the paper's "error
    /// rate of the accuracy model".
    pub fn model_error_points(&self) -> f64 {
        (self.predicted_accuracy - self.measured_accuracy).abs() * 100.0
    }
}

/// Trains the autoencoder and runs the validation.
///
/// # Errors
///
/// Propagates training/shape errors.
pub fn evaluate(
    train_patches: usize,
    test_patches: usize,
    epochs: usize,
) -> Result<JpegResult, Box<dyn std::error::Error>> {
    let mut rng = StdRng::seed_from_u64(20160314);

    // --- train the 64-16-64 autoencoder ------------------------------------
    let mut mlp = Mlp::random(
        &[64, 16, 64],
        Activation::Sigmoid,
        Activation::Sigmoid,
        &mut rng,
    )?;
    let patches = smooth_patches(train_patches + test_patches, &mut rng);
    let train: Vec<(Tensor, Tensor)> = patches[..train_patches]
        .iter()
        .map(|p| (p.clone(), p.clone()))
        .collect();
    let history = mlp.train(&train, epochs, 0.8)?;
    let final_training_loss = *history.last().expect("at least one epoch");

    // --- per-layer deviation prediction -------------------------------------
    let mut config = Config::fully_connected_mlp(&[64, 16, 64])?;
    config.crossbar_size = 64;
    let model = AccuracyModel::from_config(&config);
    let k = config.output_levels();
    let quantizer = Quantizer::new(config.precision.output_bits, 0.0, 1.0)?;

    // Crossbar geometries of the two banks: 64×16 and 16×64.
    let epsilons = vec![
        model.error_rate(64, 16, config.interconnect, &config.device, Case::Average),
        model.error_rate(16, 64, config.interconnect, &config.device, Case::Average),
    ];
    let layers = propagate(&epsilons, k);
    let deviations: Vec<f64> = layers.iter().map(|l| l.avg_deviation).collect();
    let predicted_accuracy = 1.0 - layers.last().expect("two layers").avg_error_rate;

    // --- measured: quantized inference with injected deviations -------------
    let network = mlp.to_network();
    let mut total_accuracy = 0.0;
    for patch in &patches[train_patches..] {
        let reference = quantized_forward(&network, patch, &quantizer, None, &mut rng)?;
        let noisy =
            quantized_forward(&network, patch, &quantizer, Some(&deviations), &mut rng)?;
        total_accuracy += relative_accuracy(&reference, &noisy);
    }
    let measured_accuracy = total_accuracy / test_patches as f64;

    Ok(JpegResult {
        final_training_loss,
        predicted_accuracy,
        measured_accuracy,
    })
}

/// Forward pass with per-layer quantization and optional deviation
/// injection after each synapse-plus-neuron stage.
fn quantized_forward(
    network: &mnsim_nn::Network,
    input: &Tensor,
    quantizer: &Quantizer,
    deviations: Option<&[f64]>,
    rng: &mut StdRng,
) -> Result<Tensor, Box<dyn std::error::Error>> {
    let mut current = quantizer.quantize_tensor(input);
    let mut synapse_index = 0usize;
    let mut pending_synapse = false;
    for layer in network.layers() {
        current = layer.forward(&current)?;
        match layer {
            Layer::FullyConnected(_) => pending_synapse = true,
            Layer::Activation(_) if pending_synapse => {
                pending_synapse = false;
                current = quantizer.quantize_tensor(&current);
                if let Some(devs) = deviations {
                    current =
                        inject_digital_deviation(&current, quantizer, devs[synapse_index], rng);
                }
                synapse_index += 1;
            }
            _ => {}
        }
    }
    Ok(current)
}

/// Runs the experiment and renders the summary.
///
/// # Errors
///
/// Propagates training/shape errors.
pub fn run() -> Result<String, Box<dyn std::error::Error>> {
    let result = evaluate(48, 16, 400)?;
    Ok(format!(
        "JPEG-style accuracy validation (64-16-64 autoencoder, paper §VII.A)\n\n\
         final training loss (MSE):        {:.5}\n\
         predicted relative accuracy:      {:.2} %\n\
         measured relative accuracy:       {:.2} %\n\
         accuracy-model error:             {:.2} points (paper: < 1 %)\n",
        result.final_training_loss,
        result.predicted_accuracy * 100.0,
        result.measured_accuracy * 100.0,
        result.model_error_points(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_predicts_application_accuracy() {
        // Reduced workload for test speed; the tolerance stays strict
        // enough to catch a broken propagation chain.
        let result = evaluate(24, 8, 150).unwrap();
        assert!(result.final_training_loss < 0.1, "autoencoder failed to train");
        assert!(result.predicted_accuracy > 0.5);
        assert!(result.measured_accuracy > 0.5);
        assert!(
            result.model_error_points() < 5.0,
            "prediction {:.2} % vs measurement {:.2} %",
            result.predicted_accuracy * 100.0,
            result.measured_accuracy * 100.0
        );
    }
}
