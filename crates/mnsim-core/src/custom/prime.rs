//! The PRIME full-function (FF) subarray case study (paper §VII.E-1,
//! Table VII).
//!
//! PRIME (Chi et al., ISCA'16) embeds computation into ReRAM main memory;
//! its FF subarray is a reconfigurable block where the adders, neurons and
//! buffers live *inside* the computation units. The paper simulates one
//! FF subarray: RRAM, crossbar size 256, four crossbars, 6-bit I/O, 8-bit
//! signed weights at 4 bits per cell (so four cells per weight), 65 nm
//! CMOS, evaluated on a 256×256 DNN layer task.

use mnsim_nn::models;
use mnsim_tech::cmos::CmosNode;

use crate::config::{Config, NetworkType, Precision, SignedMapping, WeightPolarity};
use crate::custom::{CustomDesign, CustomReport};
use crate::error::CoreError;

/// The PRIME FF-subarray configuration.
pub fn prime_config() -> Config {
    let mut config = Config::for_network(models::prime_task());
    config.network_type = NetworkType::Ann;
    config.cmos = CmosNode::N65;
    config.crossbar_size = 256;
    config.weight_polarity = WeightPolarity::Signed;
    config.signed_mapping = SignedMapping::DualCrossbar;
    config.precision = Precision {
        input_bits: 6,
        weight_bits: 8,
        output_bits: 6,
    };
    // 4-bit cells: 8-bit weights need two slices × two polarities = four
    // cells per weight, matching the published mapping.
    config.device.bits_per_cell = 4;
    config
}

/// The PRIME customized design: reference modules remapped into the
/// units (no extra imported modules are needed — the paper notes "all the
/// modules in the FF subarray have been modeled in MNSIM").
pub fn prime_design() -> CustomDesign {
    CustomDesign {
        base: prime_config(),
        imported: vec![],
        pipeline_depth: None,
    }
}

/// Evaluates the PRIME FF subarray on the 256×256 DNN-layer peak task.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_prime() -> Result<CustomReport, CoreError> {
    prime_design().evaluate("PRIME FF-subarray")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn configuration_matches_publication() {
        let c = prime_config();
        assert_eq!(c.cmos, CmosNode::N65);
        assert_eq!(c.crossbar_size, 256);
        assert_eq!(c.precision.input_bits, 6);
        assert_eq!(c.precision.output_bits, 6);
        // Four cells per weight: 2 slices × 2 polarity crossbars.
        assert_eq!(c.weight_slices(), 2);
        assert_eq!(c.crossbars_per_block(), 4);
        c.validate().unwrap();
    }

    #[test]
    fn task_uses_four_crossbars_in_one_unit() {
        let c = prime_config();
        let p = crate::mapping::Partition::new(&c, 256, 256);
        assert_eq!(p.unit_count(), 1);
        // unit holds 4 crossbars (checked via the unit model)
        let u = crate::arch::unit::evaluate_unit(&c, 256, 256);
        assert_eq!(u.crossbar_count, 4);
    }

    #[test]
    fn report_magnitudes_are_plausible() {
        let report = simulate_prime().unwrap();
        // Table VII: area 0.17 mm², energy 0.08 µJ, latency 0.66 µs,
        // accuracy 91 %. Our substrate reproduces the order of magnitude,
        // not the exact decimals.
        let area = report.area.square_millimeters();
        assert!(area > 0.01 && area < 10.0, "area {area} mm²");
        let energy = report.energy_per_task.microjoules();
        assert!(energy > 0.001 && energy < 100.0, "energy {energy} µJ");
        let latency = report.latency.microseconds();
        assert!(latency > 0.01 && latency < 100.0, "latency {latency} µs");
        assert!(report.relative_accuracy > 0.5);
    }
}
