//! The ISAAC tile case study (paper §VII.E-2, Table VII).
//!
//! ISAAC (Shafiee et al., ISCA'16) organizes 128×128 crossbars into tiles
//! with a 22-stage inner pipeline. Several of its modules are outside
//! MNSIM's reference design — the eDRAM buffer, the sample-and-hold
//! arrays, and the custom 8-bit 1.2 GS/s SAR ADC — so their dynamic power
//! and area are *imported* from the original publication (exactly what the
//! paper does: "The authors have provided the dynamic power and area
//! consumption of these modules, and we directly import them").

use mnsim_nn::models;
use mnsim_tech::cmos::CmosNode;
use mnsim_tech::units::{Area, Energy, Power, Time};

use crate::config::{Config, NetworkType, Precision};
use crate::custom::{CustomDesign, CustomReport, ImportedModule};
use crate::error::CoreError;
use crate::perf::ModulePerf;

/// ISAAC's inner pipeline depth.
pub const ISAAC_PIPELINE_DEPTH: usize = 22;

/// The base configuration of one ISAAC tile: 32 nm CMOS, 128-size RRAM
/// crossbars, 8-bit data (the device is RRAM because the original paper
/// "hasn't provided the detailed device information").
pub fn isaac_config() -> Config {
    // A tile computes a 1152×1024-ish slice in the original; the published
    // peak-performance task uses all 96 crossbars of the tile. With dual
    // crossbars and 2 slices per weight (2-bit cells in ISAAC; we keep
    // 4-bit cells → 2 slices × 2 polarity = 4 crossbars per block), a
    // 1536×512 layer occupies 12 blocks × ... — we pick a layer that maps
    // onto 24 blocks × 4 crossbars = 96 crossbars.
    let mut config = Config::for_network(models::mlp(&[384, 1024]).expect("static dims"));
    config.network_type = NetworkType::Ann;
    config.cmos = CmosNode::N32;
    config.crossbar_size = 128;
    config.precision = Precision {
        input_bits: 8,
        weight_bits: 8,
        output_bits: 8,
    };
    config.device.bits_per_cell = 4;
    // ISAAC shares a single ADC per crossbar and hides the conversion
    // latency inside the 22-stage pipeline.
    config.parallelism = 1;
    config
}

/// The imported ISAAC modules with the published per-tile numbers
/// (Shafiee et al., Table 6: eDRAM 0.083 mm²/20.7 mW, ADC block
/// 0.0096 mm²/16 mW ×8, S&H 0.00004 mm² ×8, output register etc. — the
/// dominant three are imported, matching the paper's procedure).
pub fn isaac_imported_modules() -> Vec<ImportedModule> {
    let cycle = Time::from_nanoseconds(100.0); // ISAAC's 100 ns cycle
    vec![
        ImportedModule {
            name: "eDRAM buffer".into(),
            perf: ModulePerf::new(
                Area::from_square_millimeters(0.083),
                cycle,
                Energy::from_joules(20.7e-3 * 100e-9),
                Power::from_milliwatts(2.0),
            ),
            count: 1,
        },
        ImportedModule {
            name: "custom SAR ADC".into(),
            perf: ModulePerf::new(
                Area::from_square_millimeters(0.0096),
                Time::from_nanoseconds(0.83), // 1.2 GS/s
                Energy::from_joules(2.0e-3 * 100e-9),
                Power::from_microwatts(200.0),
            ),
            count: 8,
        },
        ImportedModule {
            name: "sample-and-hold".into(),
            perf: ModulePerf::new(
                Area::from_square_micrometers(40.0),
                Time::from_nanoseconds(1.0),
                Energy::from_picojoules(1.0),
                Power::from_nanowatts(10.0),
            ),
            count: 8,
        },
    ]
}

/// The ISAAC tile as a customized design: imported modules + 22-stage
/// pipeline.
pub fn isaac_design() -> CustomDesign {
    CustomDesign {
        base: isaac_config(),
        imported: isaac_imported_modules(),
        pipeline_depth: Some(ISAAC_PIPELINE_DEPTH),
    }
}

/// Evaluates the ISAAC tile on a task filling all its crossbars.
///
/// # Errors
///
/// Propagates simulation errors.
pub fn simulate_isaac() -> Result<CustomReport, CoreError> {
    isaac_design().evaluate("ISAAC tile")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_uses_96_crossbars() {
        let c = isaac_config();
        let p = crate::mapping::Partition::new(&c, 384, 1024);
        let u = crate::arch::unit::evaluate_unit(&c, 128, 128);
        assert_eq!(
            p.unit_count() * u.crossbar_count,
            96,
            "blocks {} × crossbars {}",
            p.unit_count(),
            u.crossbar_count
        );
    }

    #[test]
    fn pipeline_depth_is_22() {
        let design = isaac_design();
        assert_eq!(design.pipeline_depth, Some(22));
    }

    #[test]
    fn imported_modules_match_publication_names() {
        let modules = isaac_imported_modules();
        let names: Vec<&str> = modules.iter().map(|m| m.name.as_str()).collect();
        assert!(names.contains(&"eDRAM buffer"));
        assert!(names.contains(&"custom SAR ADC"));
        assert!(names.contains(&"sample-and-hold"));
    }

    #[test]
    fn report_magnitudes_are_plausible() {
        // Table VII: area 0.37 mm², energy 0.94 µJ, latency 2.2 µs,
        // accuracy 96 %. Shape check: sub-10-mm² tile, µJ-scale energy,
        // µs-scale latency.
        let report = simulate_isaac().unwrap();
        let area = report.area.square_millimeters();
        assert!(area > 0.05 && area < 20.0, "area {area} mm²");
        let energy = report.energy_per_task.microjoules();
        assert!(energy > 0.01 && energy < 1000.0, "energy {energy} µJ");
        let latency = report.latency.microseconds();
        assert!(latency > 0.1 && latency < 1000.0, "latency {latency} µs");
    }

    #[test]
    fn latency_is_22_stages() {
        let report = simulate_isaac().unwrap();
        let base = crate::simulate::simulate(&isaac_config()).unwrap();
        let stage = base
            .pipeline_cycle
            .max(Time::from_nanoseconds(100.0)); // eDRAM import latency
        assert!(
            (report.latency.seconds() - stage.seconds() * 22.0).abs() < 1e-12,
            "{} vs {}",
            report.latency.seconds(),
            stage.seconds() * 22.0
        );
    }
}
