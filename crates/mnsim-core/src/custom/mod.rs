//! Customized designs (paper §III.E and §VII.E).
//!
//! MNSIM's customization interfaces let users (1) remap the reference
//! modules into different connections and (2) import performance records
//! for modules MNSIM does not model. This module provides the generic
//! mechanism ([`CustomDesign`], [`ImportedModule`]) plus the two published
//! case studies:
//!
//! * [`prime`] — the PRIME full-function subarray (Chi et al., ISCA'16),
//! * [`isaac`] — the ISAAC tile with its 22-stage inner pipeline
//!   (Shafiee et al., ISCA'16).

pub mod isaac;
pub mod prime;

use mnsim_tech::units::{Area, Energy, Power, Time};

use crate::config::Config;
use crate::error::CoreError;
use crate::perf::ModulePerf;
use crate::simulate::simulate;

/// A module whose performance record is imported from external data
/// (a publication, a layout, another simulator such as NVSim) instead of
/// MNSIM's reference models — the paper's §III.E-3 customization path.
#[derive(Debug, Clone, PartialEq)]
pub struct ImportedModule {
    /// Human-readable name (e.g. "eDRAM buffer").
    pub name: String,
    /// The imported per-operation performance record.
    pub perf: ModulePerf,
    /// Instances of this module in the design.
    pub count: usize,
}

impl ImportedModule {
    /// The record scaled to all instances operating in parallel.
    pub fn total(&self) -> ModulePerf {
        self.perf.replicate_parallel(self.count)
    }
}

/// A customized accelerator: the reference hierarchy of `base` plus
/// imported modules, with an optional inner-pipeline override for designs
/// like ISAAC whose tile runs a fixed multi-cycle schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct CustomDesign {
    /// The underlying reference configuration.
    pub base: Config,
    /// Modules imported from external data.
    pub imported: Vec<ImportedModule>,
    /// If set, the design executes `depth` pipeline stages per task, each
    /// one reference pipeline cycle long (ISAAC's 22-cycle inner pipeline).
    pub pipeline_depth: Option<usize>,
}

/// The evaluation result of a customized design (a Table VII column).
#[derive(Debug, Clone, PartialEq)]
pub struct CustomReport {
    /// Design name.
    pub name: String,
    /// Total area (reference modules + imported modules).
    pub area: Area,
    /// Energy for one complete task.
    pub energy_per_task: Energy,
    /// Latency of one complete task.
    pub latency: Time,
    /// Average relative accuracy (1 − average output error rate).
    pub relative_accuracy: f64,
    /// Average power over a task.
    pub power: Power,
}

impl CustomDesign {
    /// Evaluates the customized design.
    ///
    /// # Errors
    ///
    /// Propagates configuration/simulation errors.
    pub fn evaluate(&self, name: impl Into<String>) -> Result<CustomReport, CoreError> {
        let report = simulate(&self.base)?;

        let imported_area: Area = self.imported.iter().map(|m| m.total().area).sum();
        let imported_leakage: Power = self.imported.iter().map(|m| m.total().leakage).sum();

        let area = report.total_area + imported_area;

        let (latency, cycles) = match self.pipeline_depth {
            Some(depth) => {
                // The task occupies `depth` stages; each stage is bounded
                // by the slowest of the reference cycle and the imported
                // modules.
                let imported_latency = self
                    .imported
                    .iter()
                    .map(|m| m.perf.latency)
                    .fold(Time::ZERO, Time::max);
                let stage = report.pipeline_cycle.max(imported_latency);
                (stage * depth as f64, depth)
            }
            None => (report.sample_latency, 1),
        };

        let imported_energy: Energy = self
            .imported
            .iter()
            .map(|m| m.total().dynamic_energy)
            .sum();
        let energy_per_task = report.energy_per_sample + imported_energy * cycles as f64;

        let power = if latency.seconds() > 0.0 {
            energy_per_task / latency + report.accelerator.total_leakage + imported_leakage
        } else {
            report.accelerator.total_leakage + imported_leakage
        };

        Ok(CustomReport {
            name: name.into(),
            area,
            energy_per_task,
            latency,
            relative_accuracy: 1.0 - report.output_avg_error_rate,
            power,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::units::{Area, Energy, Power, Time};

    fn imported() -> ImportedModule {
        ImportedModule {
            name: "eDRAM".into(),
            perf: ModulePerf::new(
                Area::from_square_micrometers(1000.0),
                Time::from_nanoseconds(10.0),
                Energy::from_picojoules(50.0),
                Power::from_microwatts(5.0),
            ),
            count: 4,
        }
    }

    #[test]
    fn imported_modules_add_area_and_energy() {
        let base = Config::fully_connected_mlp(&[64, 64]).unwrap();
        let plain = CustomDesign {
            base: base.clone(),
            imported: vec![],
            pipeline_depth: None,
        }
        .evaluate("plain")
        .unwrap();
        let custom = CustomDesign {
            base,
            imported: vec![imported()],
            pipeline_depth: None,
        }
        .evaluate("custom")
        .unwrap();
        let area_gain = custom.area.square_micrometers() - plain.area.square_micrometers();
        assert!((area_gain - 4000.0).abs() < 1e-6);
        assert!(custom.energy_per_task.joules() > plain.energy_per_task.joules());
    }

    #[test]
    fn pipeline_depth_multiplies_latency() {
        let base = Config::fully_connected_mlp(&[64, 64]).unwrap();
        let design = CustomDesign {
            base,
            imported: vec![],
            pipeline_depth: Some(22),
        };
        let report = design.evaluate("pipelined").unwrap();
        let reference = simulate(&design.base).unwrap();
        let expected = reference.pipeline_cycle.seconds() * 22.0;
        assert!((report.latency.seconds() - expected).abs() < 1e-15);
    }

    #[test]
    fn accuracy_between_zero_and_one() {
        let base = Config::fully_connected_mlp(&[128, 128]).unwrap();
        let report = CustomDesign {
            base,
            imported: vec![],
            pipeline_depth: None,
        }
        .evaluate("acc")
        .unwrap();
        assert!((0.0..=1.0).contains(&report.relative_accuracy));
    }
}
