//! Error type for the MNSIM platform.

use std::error::Error;
use std::fmt;

use mnsim_circuit::CircuitError;
use mnsim_nn::NnError;
use mnsim_tech::TechError;

/// Errors produced by configuration, simulation, or exploration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value is invalid or inconsistent.
    InvalidConfig {
        /// The offending parameter (Table I name where applicable).
        parameter: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// A configuration file could not be parsed.
    ConfigParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The design space is empty after applying constraints.
    EmptyDesignSpace {
        /// Description of the active constraints.
        constraints: String,
    },
    /// Error propagated from the technology layer.
    Tech(TechError),
    /// Error propagated from the circuit simulator.
    Circuit(CircuitError),
    /// Error propagated from the network substrate.
    Nn(NnError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration `{parameter}`: {reason}")
            }
            CoreError::ConfigParse { line, reason } => {
                write!(f, "configuration parse error at line {line}: {reason}")
            }
            CoreError::EmptyDesignSpace { constraints } => {
                write!(f, "no design satisfies the constraints: {constraints}")
            }
            CoreError::Tech(e) => write!(f, "technology model: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit simulation: {e}"),
            CoreError::Nn(e) => write!(f, "network substrate: {e}"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tech(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TechError> for CoreError {
    fn from(e: TechError) -> Self {
        CoreError::Tech(e)
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            parameter: "Crossbar_Size",
            reason: "must be a power of two".into(),
        };
        assert!(e.to_string().contains("Crossbar_Size"));

        let e: CoreError = TechError::NoConverter { bits: 12 }.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("12-bit"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
