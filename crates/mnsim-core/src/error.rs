//! Error type for the MNSIM platform.

use std::error::Error;
use std::fmt;

use mnsim_circuit::CircuitError;
use mnsim_nn::NnError;
use mnsim_tech::TechError;

/// One invalid configuration field, as reported by
/// [`Config::check`](crate::config::Config::check).
///
/// Unlike the stringly [`CoreError::InvalidConfig`] (kept for ad-hoc
/// single-parameter failures), this is a fully typed record: where the
/// violation sits, what was wrong, and what *would* have been accepted —
/// so front ends can render every problem of a configuration at once
/// instead of fixing them one error at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field, using Table I names where they
    /// exist (e.g. `Crossbar_Size`, `Precision.output_bits`).
    pub field_path: String,
    /// What is wrong with the current value.
    pub reason: String,
    /// The accepted range / set of values.
    pub allowed: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} (allowed: {})",
            self.field_path, self.reason, self.allowed
        )
    }
}

impl Error for ConfigError {}

/// Errors produced by configuration, simulation, or exploration.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CoreError {
    /// A configuration value is invalid or inconsistent.
    InvalidConfig {
        /// The offending parameter (Table I name where applicable).
        parameter: &'static str,
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// Configuration validation failed; every violation is listed (never
    /// empty), so one round trip surfaces all problems at once.
    Config {
        /// Every invalid field found by
        /// [`Config::check`](crate::config::Config::check).
        errors: Vec<ConfigError>,
    },
    /// A configuration file could not be parsed.
    ConfigParse {
        /// 1-based line number.
        line: usize,
        /// Description of the problem.
        reason: String,
    },
    /// The design space is empty after applying constraints.
    EmptyDesignSpace {
        /// Description of the active constraints.
        constraints: String,
    },
    /// Error propagated from the technology layer.
    Tech(TechError),
    /// Error propagated from the circuit simulator.
    Circuit(CircuitError),
    /// Error propagated from the network substrate.
    Nn(NnError),
    /// A campaign was cancelled before completing every item (via
    /// [`CancelToken`](crate::exec::CancelToken)).
    Cancelled {
        /// Items that ran to completion before the cut.
        completed: usize,
        /// Items requested.
        total: usize,
        /// Path of the checkpoint holding the completed work, if one was
        /// written — resume from it to finish the run bit-identically.
        checkpoint: Option<String>,
    },
    /// A campaign's deadline (via
    /// [`Deadline`](crate::exec::Deadline)) expired before completing
    /// every item.
    DeadlineExceeded {
        /// Items that ran to completion before the cut.
        completed: usize,
        /// Items requested.
        total: usize,
        /// Path of the checkpoint holding the completed work, if one was
        /// written.
        checkpoint: Option<String>,
    },
    /// A worker closure panicked on one item; sibling items were
    /// evaluated and their results preserved up to the failure.
    WorkerPanic {
        /// The item index whose worker panicked.
        index: usize,
        /// The stringified panic payload.
        payload: String,
    },
    /// A checkpoint file could not be read, parsed, or written, or does
    /// not belong to the campaign being resumed.
    Checkpoint {
        /// The checkpoint file path.
        path: String,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidConfig { parameter, reason } => {
                write!(f, "invalid configuration `{parameter}`: {reason}")
            }
            CoreError::Config { errors } => {
                write!(
                    f,
                    "invalid configuration ({} violation{}): ",
                    errors.len(),
                    if errors.len() == 1 { "" } else { "s" }
                )?;
                for (i, error) in errors.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{error}")?;
                }
                Ok(())
            }
            CoreError::ConfigParse { line, reason } => {
                write!(f, "configuration parse error at line {line}: {reason}")
            }
            CoreError::EmptyDesignSpace { constraints } => {
                write!(f, "no design satisfies the constraints: {constraints}")
            }
            CoreError::Tech(e) => write!(f, "technology model: {e}"),
            CoreError::Circuit(e) => write!(f, "circuit simulation: {e}"),
            CoreError::Nn(e) => write!(f, "network substrate: {e}"),
            CoreError::Cancelled {
                completed,
                total,
                checkpoint,
            } => {
                write!(f, "campaign cancelled after {completed}/{total} items")?;
                if let Some(path) = checkpoint {
                    write!(f, " (checkpoint: {path})")?;
                }
                Ok(())
            }
            CoreError::DeadlineExceeded {
                completed,
                total,
                checkpoint,
            } => {
                write!(f, "deadline exceeded after {completed}/{total} items")?;
                if let Some(path) = checkpoint {
                    write!(f, " (checkpoint: {path})")?;
                }
                Ok(())
            }
            CoreError::WorkerPanic { index, payload } => {
                write!(f, "worker panicked on item {index}: {payload}")
            }
            CoreError::Checkpoint { path, reason } => {
                write!(f, "checkpoint `{path}`: {reason}")
            }
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Tech(e) => Some(e),
            CoreError::Circuit(e) => Some(e),
            CoreError::Nn(e) => Some(e),
            // The violation list is never empty; the chain surfaces the
            // first record (all of them are in the Display output).
            CoreError::Config { errors } => errors.first().map(|e| e as _),
            _ => None,
        }
    }
}

impl From<TechError> for CoreError {
    fn from(e: TechError) -> Self {
        CoreError::Tech(e)
    }
}

impl From<Vec<ConfigError>> for CoreError {
    /// Lossless mapping of a [`Config::check`](crate::config::Config::check)
    /// violation list into the error enum.
    fn from(errors: Vec<ConfigError>) -> Self {
        CoreError::Config { errors }
    }
}

impl From<CircuitError> for CoreError {
    fn from(e: CircuitError) -> Self {
        CoreError::Circuit(e)
    }
}

impl From<NnError> for CoreError {
    fn from(e: NnError) -> Self {
        CoreError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = CoreError::InvalidConfig {
            parameter: "Crossbar_Size",
            reason: "must be a power of two".into(),
        };
        assert!(e.to_string().contains("Crossbar_Size"));

        let e: CoreError = TechError::NoConverter { bits: 12 }.into();
        assert!(Error::source(&e).is_some());
        assert!(e.to_string().contains("12-bit"));
    }

    #[test]
    fn config_error_lists_every_violation() {
        let errors = vec![
            ConfigError {
                field_path: "Crossbar_Size".into(),
                reason: "100 is not a power of two".into(),
                allowed: "a power of two in 4..=1024".into(),
            },
            ConfigError {
                field_path: "Pooling_Size".into(),
                reason: "must be positive".into(),
                allowed: ">= 1".into(),
            },
        ];
        let e: CoreError = errors.into();
        let text = e.to_string();
        assert!(text.contains("2 violations"), "{text}");
        assert!(text.contains("Crossbar_Size") && text.contains("Pooling_Size"), "{text}");
        assert!(text.contains("allowed: a power of two in 4..=1024"), "{text}");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}
