//! Platform configuration — the paper's Table I.
//!
//! A [`Config`] carries every design parameter of the three hierarchy
//! levels:
//!
//! | Input | Level | Default |
//! |---|---|---|
//! | `Network_Depth` / `Network_Scale` | Accelerator/Bank | from the network descriptor |
//! | `Interface_Number` | Accelerator | `[128, 128]` |
//! | `Network_Type` | Bank | `ANN` |
//! | `Crossbar_Size` | Bank | `128` |
//! | `Pooling_Size` | Bank | `2` |
//! | `Weight_Polarity` | Unit | `2` (signed) |
//! | `CMOS_Tech` | Unit | `90nm` |
//! | `Cell_Type` | Unit | `1T1R` |
//! | `Memristor_Model` | Unit | `RRAM` |
//! | `Interconnect_Tech` | Unit | `28nm` |
//! | `Parallelism_Degree` | Unit | `0` (all parallel) |
//! | `Resistance_Range` | Unit | `[500 500k]` |
//!
//! Configurations can be built programmatically or parsed from the flat
//! `key = value` file format via [`Config::from_text`].

use mnsim_nn::descriptor::NetworkDescriptor;
use mnsim_nn::models;
use mnsim_tech::cmos::CmosNode;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::{CellType, DeviceKind, MemristorModel};
use mnsim_tech::units::Resistance;

use crate::error::{ConfigError, CoreError};

/// The algorithm class mapped onto the accelerator (`Network_Type`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NetworkType {
    /// Fully-connected artificial neural network (sigmoid neurons).
    #[default]
    Ann,
    /// Spiking neural network (integrate-and-fire neurons).
    Snn,
    /// Convolutional neural network (ReLU neurons, pooling).
    Cnn,
}

impl std::fmt::Display for NetworkType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetworkType::Ann => write!(f, "ANN"),
            NetworkType::Snn => write!(f, "SNN"),
            NetworkType::Cnn => write!(f, "CNN"),
        }
    }
}

/// Whether weights carry a sign (`Weight_Polarity`, paper value 1 or 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WeightPolarity {
    /// Non-negative weights: one memristor per weight.
    Unsigned,
    /// Signed weights: two memristors per weight (paper §III.C-1).
    #[default]
    Signed,
}

/// How signed weights map onto crossbars (paper §III.C-1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SignedMapping {
    /// Two mirrored crossbars; subtractors merge corresponding outputs.
    #[default]
    DualCrossbar,
    /// Positive and negative weights share one crossbar in different
    /// columns; column pairs are subtracted.
    SharedCrossbar,
}

/// How input values reach the crossbar rows.
///
/// The reference design uses one DAC per row (paper §III.C-3). Several
/// published designs instead eliminate the DACs (paper §III.E-2, after
/// \[24\]/\[30\] and ISAAC): inputs are streamed one bit per compute cycle
/// through simple binary drivers, and the read results are shift-added
/// over `input_bits` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum InputEncoding {
    /// Multi-bit DAC per row; one compute cycle per matrix-vector product.
    #[default]
    AnalogDac,
    /// 1-bit drivers; `input_bits` compute cycles per matrix-vector
    /// product with digital shift-accumulate at the read circuits.
    BitSerial,
}

/// Fixed-point precision of the data path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Precision {
    /// Input-signal precision in bits (DAC resolution).
    pub input_bits: u32,
    /// Weight precision in bits (possibly spread over several cells).
    pub weight_bits: u32,
    /// Output/read precision in bits (ADC resolution; `k = 2^bits` levels).
    pub output_bits: u32,
}

impl Default for Precision {
    /// 8-bit signals, 4-bit signed weights, 8-bit outputs — the large-bank
    /// case study's precisions (paper §VII.C).
    fn default() -> Self {
        Precision {
            input_bits: 8,
            weight_bits: 4,
            output_bits: 8,
        }
    }
}

/// A complete MNSIM configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Config {
    /// The application network (defines `Network_Depth` and
    /// `Network_Scale`).
    pub network: NetworkDescriptor,
    /// Algorithm class.
    pub network_type: NetworkType,
    /// Input interface width in wires (`Interface_Number[0]`).
    pub interface_in: usize,
    /// Output interface width in wires (`Interface_Number[1]`).
    pub interface_out: usize,
    /// Crossbar rows/columns (`Crossbar_Size`).
    pub crossbar_size: usize,
    /// Pooling window (`Pooling_Size`, CNN only).
    pub pooling_size: usize,
    /// Weight polarity.
    pub weight_polarity: WeightPolarity,
    /// Signed-weight mapping method.
    pub signed_mapping: SignedMapping,
    /// Input drive scheme.
    pub input_encoding: InputEncoding,
    /// CMOS process (`CMOS_Tech`).
    pub cmos: CmosNode,
    /// Memristor device model (`Cell_Type`, `Memristor_Model`,
    /// `Resistance_Range`).
    pub device: MemristorModel,
    /// Interconnect technology (`Interconnect_Tech`).
    pub interconnect: InterconnectNode,
    /// Read circuits per crossbar (`Parallelism_Degree`; 0 = one per
    /// column, fully parallel).
    pub parallelism: usize,
    /// Fixed-point data-path precision.
    pub precision: Precision,
    /// Column sensing resistance of the read circuit.
    pub sense_resistance: Resistance,
}

impl Config {
    /// Reference configuration (paper defaults) for a given network.
    pub fn for_network(network: NetworkDescriptor) -> Self {
        Config {
            network,
            network_type: NetworkType::Ann,
            interface_in: 128,
            interface_out: 128,
            crossbar_size: 128,
            pooling_size: 2,
            weight_polarity: WeightPolarity::Signed,
            signed_mapping: SignedMapping::DualCrossbar,
            input_encoding: InputEncoding::AnalogDac,
            cmos: CmosNode::N90,
            device: MemristorModel::rram_default(),
            interconnect: InterconnectNode::N28,
            parallelism: 0,
            precision: Precision::default(),
            sense_resistance: Resistance::from_ohms(10.0),
        }
    }

    /// Reference configuration for a fully-connected MLP
    /// (`dims = [in, hidden…, out]`).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Nn`] if fewer than two sizes are given, and
    /// validation errors for inconsistent defaults (should not occur).
    pub fn fully_connected_mlp(dims: &[usize]) -> Result<Self, CoreError> {
        let network = models::mlp(dims)?;
        let config = Config::for_network(network);
        config.validate()?;
        Ok(config)
    }

    /// Reference CNN configuration for VGG-16 (paper §VII.D defaults:
    /// 45 nm CMOS, 8-bit data, 7-bit cells).
    pub fn vgg16_cnn() -> Self {
        let mut config = Config::for_network(models::vgg16());
        config.network_type = NetworkType::Cnn;
        config.cmos = CmosNode::N45;
        config.precision = Precision {
            input_bits: 8,
            weight_bits: 8,
            output_bits: 8,
        };
        config
    }

    /// Checks cross-parameter consistency and returns **every** violation
    /// found, as typed [`ConfigError`] records (empty = valid).
    ///
    /// [`Config::validate`] wraps the non-empty case into
    /// [`CoreError::Config`]; call `check` directly to render all
    /// problems of a configuration in one pass (the Table-I file front
    /// end and DSE constraint tooling do).
    pub fn check(&self) -> Vec<ConfigError> {
        let mut errors = Vec::new();
        let mut violation = |field_path: &str, reason: String, allowed: &str| {
            errors.push(ConfigError {
                field_path: field_path.to_string(),
                reason,
                allowed: allowed.to_string(),
            });
        };

        if !self.crossbar_size.is_power_of_two() || !(4..=1024).contains(&self.crossbar_size) {
            violation(
                "Crossbar_Size",
                format!("got {}", self.crossbar_size),
                "a power of two in 4..=1024",
            );
        }
        if self.pooling_size == 0 {
            violation("Pooling_Size", "got 0".into(), "a positive window size");
        }
        if self.parallelism > self.crossbar_size {
            violation(
                "Parallelism_Degree",
                format!(
                    "{} read circuits exceed the {} crossbar columns",
                    self.parallelism, self.crossbar_size
                ),
                "0 (fully parallel) or at most Crossbar_Size",
            );
        }
        if self.interface_in == 0 {
            violation(
                "Interface_Number[0]",
                "input interface width is 0".into(),
                "a positive wire count",
            );
        }
        if self.interface_out == 0 {
            violation(
                "Interface_Number[1]",
                "output interface width is 0".into(),
                "a positive wire count",
            );
        }
        let p = &self.precision;
        for (name, bits) in [
            ("Precision.input_bits", p.input_bits),
            ("Precision.weight_bits", p.weight_bits),
            ("Precision.output_bits", p.output_bits),
        ] {
            if bits == 0 || bits > 16 {
                violation(name, format!("got {bits}"), "1..=16 bits");
            }
        }
        let sense_ohms = self.sense_resistance.ohms();
        if sense_ohms.is_nan() || sense_ohms <= 0.0 {
            violation(
                "Sense_Resistance",
                format!("got {sense_ohms} Ω"),
                "a positive resistance",
            );
        }
        if let Err(e) = self.device.validate() {
            violation(
                "Memristor_Model",
                e.to_string(),
                "see MemristorModel::validate",
            );
        }
        errors
    }

    /// Validates cross-parameter consistency.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] carrying **every** violation (see
    /// [`Config::check`]), not just the first one found.
    pub fn validate(&self) -> Result<(), CoreError> {
        let errors = self.check();
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.into())
        }
    }

    /// Number of crossbars a weight needs for its bit slices:
    /// `ceil(weight_bits / bits_per_cell)` (paper §III.B-2).
    pub fn weight_slices(&self) -> usize {
        self.precision
            .weight_bits
            .div_ceil(self.device.bits_per_cell) as usize
    }

    /// Crossbar copies per logical weight matrix block: bit slices ×
    /// polarity (dual-crossbar signed mapping doubles the crossbars;
    /// shared-crossbar mapping instead doubles the columns).
    pub fn crossbars_per_block(&self) -> usize {
        let polarity = match (self.weight_polarity, self.signed_mapping) {
            (WeightPolarity::Unsigned, _) => 1,
            (WeightPolarity::Signed, SignedMapping::DualCrossbar) => 2,
            (WeightPolarity::Signed, SignedMapping::SharedCrossbar) => 1,
        };
        polarity * self.weight_slices()
    }

    /// Effective columns one logical output occupies inside a crossbar
    /// (2 for shared-crossbar signed mapping, 1 otherwise).
    pub fn columns_per_output(&self) -> usize {
        match (self.weight_polarity, self.signed_mapping) {
            (WeightPolarity::Signed, SignedMapping::SharedCrossbar) => 2,
            _ => 1,
        }
    }

    /// The number of read circuits per crossbar after resolving the
    /// `0 = fully parallel` convention against `columns` used columns.
    pub fn effective_parallelism(&self, columns: usize) -> usize {
        if self.parallelism == 0 {
            columns
        } else {
            self.parallelism.min(columns)
        }
    }

    /// The `k` of the accuracy model: number of output quantization levels.
    pub fn output_levels(&self) -> u32 {
        1 << self.precision.output_bits
    }

    /// Parses the Table I `key = value` configuration-file format.
    ///
    /// `Network_Scale` accepts a comma-separated chain of fully-connected
    /// layer shapes, e.g. `2048x1024` or `128x128,128x128`. For CNNs,
    /// construct the [`NetworkDescriptor`] programmatically and use
    /// [`Config::for_network`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigParse`] with the offending line, or
    /// validation errors for inconsistent values.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        let mut scale: Option<Vec<(usize, usize)>> = None;
        let mut config = Config::for_network(models::mlp(&[128, 128])?);

        for (lineno, raw) in text.lines().enumerate() {
            let line_number = lineno + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') || line.starts_with(';') || line.starts_with('*') {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| CoreError::ConfigParse {
                line: line_number,
                reason: "expected `key = value`".into(),
            })?;
            let key = key.trim();
            let value = value.trim();
            let err = |reason: String| CoreError::ConfigParse {
                line: line_number,
                reason,
            };

            match key {
                "Network_Depth" => { /* derived from Network_Scale */ }
                "Network_Scale" => {
                    let mut layers = Vec::new();
                    for part in value.split(',') {
                        let (a, b) = part
                            .trim()
                            .split_once(['x', 'X'])
                            .ok_or_else(|| err(format!("bad layer shape `{part}`")))?;
                        let rows: usize =
                            a.trim().parse().map_err(|_| err("bad layer rows".into()))?;
                        let cols: usize =
                            b.trim().parse().map_err(|_| err("bad layer cols".into()))?;
                        layers.push((rows, cols));
                    }
                    scale = Some(layers);
                }
                "Interface_Number" => {
                    let list = parse_bracket_list(value).map_err(err)?;
                    if list.len() != 2 {
                        return Err(err("Interface_Number needs two entries".into()));
                    }
                    config.interface_in = list[0] as usize;
                    config.interface_out = list[1] as usize;
                }
                "Network_Type" => {
                    config.network_type = match value.to_ascii_uppercase().as_str() {
                        "ANN" | "DNN" => NetworkType::Ann,
                        "SNN" => NetworkType::Snn,
                        "CNN" => NetworkType::Cnn,
                        other => return Err(err(format!("unknown network type `{other}`"))),
                    };
                }
                "Crossbar_Size" => {
                    config.crossbar_size =
                        value.parse().map_err(|_| err("bad crossbar size".into()))?;
                }
                "Pooling_Size" => {
                    config.pooling_size =
                        value.parse().map_err(|_| err("bad pooling size".into()))?;
                }
                "Spacial_Size" | "Spatial_Size" => { /* reserved, accepted for compatibility */ }
                "Weight_Polarity" => {
                    config.weight_polarity = match value {
                        "1" => WeightPolarity::Unsigned,
                        "2" => WeightPolarity::Signed,
                        other => return Err(err(format!("weight polarity must be 1 or 2, got `{other}`"))),
                    };
                }
                "CMOS_Tech" => {
                    let nm = parse_nanometers(value).map_err(err)?;
                    config.cmos = CmosNode::from_nanometers(nm)?;
                }
                "Cell_Type" => {
                    config.device.cell_type = match value.to_ascii_uppercase().as_str() {
                        "1T1R" => CellType::OneT1R,
                        "0T1R" => CellType::ZeroT1R,
                        other => return Err(err(format!("unknown cell type `{other}`"))),
                    };
                }
                "Memristor_Model" => {
                    config.device.kind = match value.to_ascii_uppercase().as_str() {
                        "RRAM" => DeviceKind::Rram,
                        "PCM" => DeviceKind::Pcm,
                        other => return Err(err(format!("unknown memristor model `{other}`"))),
                    };
                }
                "Interconnect_Tech" => {
                    let nm = parse_nanometers(value).map_err(err)?;
                    config.interconnect = InterconnectNode::from_nanometers(nm)?;
                }
                "Input_Encoding" => {
                    config.input_encoding = match value.to_ascii_lowercase().as_str() {
                        "analog" | "dac" => InputEncoding::AnalogDac,
                        "bit_serial" | "bitserial" => InputEncoding::BitSerial,
                        other => {
                            return Err(err(format!("unknown input encoding `{other}`")))
                        }
                    };
                }
                "Parallelism_Degree" => {
                    config.parallelism =
                        value.parse().map_err(|_| err("bad parallelism degree".into()))?;
                }
                "Resistance_Range" => {
                    let list = parse_bracket_list(value).map_err(err)?;
                    if list.len() != 2 {
                        return Err(err("Resistance_Range needs two entries".into()));
                    }
                    config.device.r_min = Resistance::from_ohms(list[0]);
                    config.device.r_max = Resistance::from_ohms(list[1]);
                }
                other => {
                    let reason = match nearest_key(other) {
                        Some(suggestion) => format!(
                            "unknown configuration key `{other}` (did you mean `{suggestion}`?)"
                        ),
                        None => format!("unknown configuration key `{other}`"),
                    };
                    return Err(err(reason));
                }
            }
        }

        if let Some(layers) = scale {
            let mut prev = layers[0].0;
            let mut dims = vec![prev];
            for (rows, cols) in &layers {
                if *rows != prev {
                    return Err(CoreError::InvalidConfig {
                        parameter: "Network_Scale",
                        reason: format!("layer {rows}x{cols} does not chain"),
                    });
                }
                dims.push(*cols);
                prev = *cols;
            }
            config.network = models::mlp(&dims)?;
        }

        config.validate()?;
        Ok(config)
    }
}

/// Every key accepted by [`Config::from_text`], for did-you-mean
/// suggestions. Keep in sync with the `match key` arms above.
const KNOWN_KEYS: &[&str] = &[
    "Network_Depth",
    "Network_Scale",
    "Interface_Number",
    "Network_Type",
    "Crossbar_Size",
    "Pooling_Size",
    "Spatial_Size",
    "Weight_Polarity",
    "CMOS_Tech",
    "Cell_Type",
    "Memristor_Model",
    "Interconnect_Tech",
    "Input_Encoding",
    "Parallelism_Degree",
    "Resistance_Range",
];

/// Case-insensitive Levenshtein distance, for typo suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().flat_map(char::to_lowercase).collect();
    let b: Vec<char> = b.chars().flat_map(char::to_lowercase).collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, ca) in a.iter().enumerate() {
        let mut prev = row[0];
        row[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = if ca == cb { prev } else { prev + 1 };
            prev = row[j + 1];
            row[j + 1] = cost.min(prev + 1).min(row[j] + 1);
        }
    }
    row[b.len()]
}

/// The closest known configuration key, if it is close enough to be a
/// plausible typo (distance ≤ 1/3 of the key length, minimum 2).
fn nearest_key(unknown: &str) -> Option<&'static str> {
    let (best, distance) = KNOWN_KEYS
        .iter()
        .map(|k| (*k, edit_distance(unknown, k)))
        .min_by_key(|(_, d)| *d)?;
    let budget = (best.len() / 3).max(2);
    (distance <= budget).then_some(best)
}

/// Parses `[a b]` or `[a, b]` lists with `k`/`M` magnitude suffixes.
fn parse_bracket_list(value: &str) -> Result<Vec<f64>, String> {
    let inner = value
        .trim()
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or_else(|| format!("expected `[a b]` list, got `{value}`"))?;
    inner
        .split([' ', ','])
        .filter(|t| !t.is_empty())
        .map(parse_magnitude)
        .collect()
}

/// Parses a number with an optional `k` (×10³) or `M` (×10⁶) suffix.
fn parse_magnitude(token: &str) -> Result<f64, String> {
    let token = token.trim();
    let (digits, factor) = if let Some(d) = token.strip_suffix(['k', 'K']) {
        (d, 1e3)
    } else if let Some(d) = token.strip_suffix('M') {
        (d, 1e6)
    } else {
        (token, 1.0)
    };
    digits
        .parse::<f64>()
        .map(|v| v * factor)
        .map_err(|_| format!("bad number `{token}`"))
}

/// Parses `90nm` / `90 nm` / `90`.
fn parse_nanometers(value: &str) -> Result<u32, String> {
    value
        .trim()
        .trim_end_matches("nm")
        .trim()
        .parse()
        .map_err(|_| format!("bad technology node `{value}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_i() {
        let config = Config::fully_connected_mlp(&[128, 128, 128]).unwrap();
        assert_eq!(config.interface_in, 128);
        assert_eq!(config.interface_out, 128);
        assert_eq!(config.network_type, NetworkType::Ann);
        assert_eq!(config.crossbar_size, 128);
        assert_eq!(config.pooling_size, 2);
        assert_eq!(config.weight_polarity, WeightPolarity::Signed);
        assert_eq!(config.cmos, CmosNode::N90);
        assert_eq!(config.interconnect, InterconnectNode::N28);
        assert_eq!(config.parallelism, 0);
        assert_eq!(config.device.r_min.ohms(), 500.0);
        assert_eq!(config.device.r_max.ohms(), 500_000.0);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.crossbar_size = 100;
        assert!(c.validate().is_err());
        c.crossbar_size = 2048;
        assert!(c.validate().is_err());

        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.parallelism = 512;
        assert!(c.validate().is_err());

        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.precision.output_bits = 0;
        assert!(c.validate().is_err());

        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.pooling_size = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn check_collects_every_violation() {
        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.crossbar_size = 100;
        c.pooling_size = 0;
        c.precision.output_bits = 0;
        c.precision.input_bits = 32;
        let errors = c.check();
        let paths: Vec<&str> = errors.iter().map(|e| e.field_path.as_str()).collect();
        assert!(paths.contains(&"Crossbar_Size"), "{paths:?}");
        assert!(paths.contains(&"Pooling_Size"), "{paths:?}");
        assert!(paths.contains(&"Precision.output_bits"), "{paths:?}");
        assert!(paths.contains(&"Precision.input_bits"), "{paths:?}");
        match c.validate() {
            Err(CoreError::Config { errors: e }) => assert_eq!(e, errors),
            other => panic!("expected CoreError::Config, got {other:?}"),
        }
        assert!(Config::fully_connected_mlp(&[64, 64]).unwrap().check().is_empty());
    }

    #[test]
    fn unknown_keys_suggest_nearest() {
        match Config::from_text("Crosbar_Size = 128\n") {
            Err(CoreError::ConfigParse { line, reason }) => {
                assert_eq!(line, 1);
                assert!(reason.contains("did you mean `Crossbar_Size`"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Nothing plausible nearby: no suggestion offered.
        match Config::from_text("Quux = 1\n") {
            Err(CoreError::ConfigParse { reason, .. }) => {
                assert!(!reason.contains("did you mean"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        assert_eq!(nearest_key("parallelism_degree"), Some("Parallelism_Degree"));
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
    }

    #[test]
    fn weight_slices_and_crossbars_per_block() {
        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.precision.weight_bits = 4;
        c.device.bits_per_cell = 7;
        assert_eq!(c.weight_slices(), 1);
        assert_eq!(c.crossbars_per_block(), 2); // signed dual-crossbar

        c.precision.weight_bits = 8;
        c.device.bits_per_cell = 4;
        assert_eq!(c.weight_slices(), 2);
        assert_eq!(c.crossbars_per_block(), 4);

        c.weight_polarity = WeightPolarity::Unsigned;
        assert_eq!(c.crossbars_per_block(), 2);

        c.weight_polarity = WeightPolarity::Signed;
        c.signed_mapping = SignedMapping::SharedCrossbar;
        assert_eq!(c.crossbars_per_block(), 2);
        assert_eq!(c.columns_per_output(), 2);
    }

    #[test]
    fn effective_parallelism_resolves_zero() {
        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.parallelism = 0;
        assert_eq!(c.effective_parallelism(64), 64);
        c.parallelism = 16;
        assert_eq!(c.effective_parallelism(64), 16);
        assert_eq!(c.effective_parallelism(8), 8);
    }

    #[test]
    fn parse_full_config_file() {
        let text = "\
# MNSIM configuration (Table I)
Network_Scale = 128x128, 128x128
Interface_Number = [128,128]
Network_Type = ANN
Crossbar_Size = 128
Pooling_Size = 2
Weight_Polarity = 2
CMOS_Tech = 90nm
Cell_Type = 1T1R
Memristor_Model = RRAM
Interconnect_Tech = 28nm
Parallelism_Degree = 0
Resistance_Range = [500 500k]
";
        let config = Config::from_text(text).unwrap();
        assert_eq!(config.network.depth(), 2);
        assert_eq!(config.crossbar_size, 128);
        assert_eq!(config.device.r_max.ohms(), 500_000.0);
        assert_eq!(config.cmos, CmosNode::N90);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        match Config::from_text("Crossbar_Size = 128\nBogus_Key = 3\n") {
            Err(CoreError::ConfigParse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
        assert!(Config::from_text("Crossbar_Size: 128\n").is_err());
        assert!(Config::from_text("Network_Type = GAN\n").is_err());
        assert!(Config::from_text("Resistance_Range = [500]\n").is_err());
    }

    #[test]
    fn parse_rejects_nonchaining_scale() {
        assert!(matches!(
            Config::from_text("Network_Scale = 128x64, 128x32\n"),
            Err(CoreError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn magnitude_suffixes() {
        assert_eq!(parse_magnitude("500").unwrap(), 500.0);
        assert_eq!(parse_magnitude("500k").unwrap(), 500_000.0);
        assert_eq!(parse_magnitude("2M").unwrap(), 2_000_000.0);
        assert!(parse_magnitude("abc").is_err());
    }

    #[test]
    fn output_levels() {
        let mut c = Config::fully_connected_mlp(&[64, 64]).unwrap();
        c.precision.output_bits = 6;
        assert_eq!(c.output_levels(), 64);
    }

    #[test]
    fn input_encoding_parses() {
        let c = Config::from_text("Input_Encoding = bit_serial\n").unwrap();
        assert_eq!(c.input_encoding, InputEncoding::BitSerial);
        let c = Config::from_text("Input_Encoding = analog\n").unwrap();
        assert_eq!(c.input_encoding, InputEncoding::AnalogDac);
        assert!(Config::from_text("Input_Encoding = telepathy\n").is_err());
    }

    #[test]
    fn vgg16_preset() {
        let c = Config::vgg16_cnn();
        assert_eq!(c.network_type, NetworkType::Cnn);
        assert_eq!(c.cmos, CmosNode::N45);
        assert_eq!(c.network.depth(), 16);
        c.validate().unwrap();
    }
}
