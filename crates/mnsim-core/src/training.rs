//! On-chip training cost model — the first item of the paper's future
//! work ("we will further support the simulation for … on-chip training
//! method \[51\]", after Prezioso et al., Nature 2015).
//!
//! During on-chip training every SGD step is: a forward COMPUTE pass, a
//! backward error-propagation pass (transposed matrix-vector
//! multiplications on the same crossbars), and a weight-update phase that
//! reprograms cells. Reprogramming is the expensive part — it pays the
//! WRITE energy/latency the inference-only usage amortizes away (paper
//! §II.B) and consumes device endurance.

use mnsim_tech::units::{Energy, Time};

use crate::config::Config;
use crate::error::CoreError;
use crate::simulate::{simulate, Report};

/// Parameters of an on-chip training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingPlan {
    /// Training samples per epoch.
    pub samples_per_epoch: usize,
    /// Epochs to run.
    pub epochs: usize,
    /// Fraction of weights actually reprogrammed per sample (sparse
    /// updates; 1.0 = dense SGD).
    pub update_density: f64,
    /// Write-verify iterations per cell update (precision tuning after
    /// Alibart et al. needs several program-read cycles).
    pub write_verify_iterations: usize,
    /// Device write endurance in cycles (10⁶ … 10¹² across published
    /// RRAM/PCM devices).
    pub endurance_cycles: f64,
}

impl Default for TrainingPlan {
    fn default() -> Self {
        TrainingPlan {
            samples_per_epoch: 1000,
            epochs: 10,
            update_density: 1.0,
            write_verify_iterations: 3,
            endurance_cycles: 1e9,
        }
    }
}

impl TrainingPlan {
    /// Validates the plan.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::InvalidConfig`] for empty plans or out-of-range
    /// densities/endurances.
    pub fn validate(&self) -> Result<(), CoreError> {
        if self.samples_per_epoch == 0 || self.epochs == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "TrainingPlan",
                reason: "need at least one epoch and one sample".into(),
            });
        }
        if !(0.0 < self.update_density && self.update_density <= 1.0) {
            return Err(CoreError::InvalidConfig {
                parameter: "update_density",
                reason: format!("must be in (0, 1], got {}", self.update_density),
            });
        }
        if self.write_verify_iterations == 0 {
            return Err(CoreError::InvalidConfig {
                parameter: "write_verify_iterations",
                reason: "need at least one programming pulse".into(),
            });
        }
        if self.endurance_cycles.is_nan() || self.endurance_cycles <= 0.0 {
            return Err(CoreError::InvalidConfig {
                parameter: "endurance_cycles",
                reason: "endurance must be positive".into(),
            });
        }
        Ok(())
    }
}

/// The estimated cost of an on-chip training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingCost {
    /// Total energy of all forward + backward passes.
    pub compute_energy: Energy,
    /// Total energy of all weight-update WRITE pulses.
    pub write_energy: Energy,
    /// Total (sequential) training time.
    pub latency: Time,
    /// Write cycles consumed per cell over the whole run.
    pub writes_per_cell: f64,
    /// Fraction of device endurance consumed (≥ 1.0 means the devices wear
    /// out before training finishes).
    pub endurance_consumed: f64,
}

impl TrainingCost {
    /// Total energy (compute + writes).
    pub fn total_energy(&self) -> Energy {
        self.compute_energy + self.write_energy
    }
}

/// Estimates the cost of on-chip training for `config`'s network.
///
/// Backward passes reuse the crossbars in the transposed direction, so one
/// sample costs two forward-equivalent passes; the update phase programs
/// `update_density × weights` cells sequentially per crossbar (cells of
/// one crossbar must be written one at a time; crossbars program in
/// parallel across units).
///
/// # Errors
///
/// Propagates configuration/simulation errors.
pub fn estimate_training(config: &Config, plan: &TrainingPlan) -> Result<TrainingCost, CoreError> {
    plan.validate()?;
    let report: Report = simulate(config)?;

    let steps = (plan.samples_per_epoch * plan.epochs) as f64;

    // Forward + backward: two compute passes per sample.
    let compute_energy = report.energy_per_sample * (2.0 * steps);
    let compute_latency = report.sample_latency * (2.0 * steps);

    // Updates: per step, each bank reprograms `density × weights` cells,
    // each costing `write_verify` pulses. Units program in parallel, cells
    // within a unit sequentially.
    let mut write_energy = Energy::ZERO;
    let mut write_latency = Time::ZERO;
    let mut writes_per_cell_total = 0.0;
    for bank in &report.accelerator.banks {
        let weights =
            (bank.partition.matrix_rows * bank.partition.matrix_cols) as f64;
        let updates_per_step = weights * plan.update_density;
        let pulses = updates_per_step * plan.write_verify_iterations as f64 * steps;
        write_energy += bank.unit.write_access.dynamic_energy * pulses;
        // Sequential within a unit; the bank's units work in parallel.
        let cells_per_unit = updates_per_step / bank.unit_count as f64;
        write_latency += bank.unit.write_access.latency
            * (cells_per_unit * plan.write_verify_iterations as f64 * steps);
        writes_per_cell_total +=
            plan.update_density * plan.write_verify_iterations as f64 * steps;
    }
    let banks = report.accelerator.banks.len() as f64;
    let writes_per_cell = writes_per_cell_total / banks;

    Ok(TrainingCost {
        compute_energy,
        write_energy,
        latency: compute_latency + write_latency,
        writes_per_cell,
        endurance_consumed: writes_per_cell / plan.endurance_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::fully_connected_mlp(&[128, 64]).unwrap()
    }

    #[test]
    fn plan_validation() {
        assert!(TrainingPlan::default().validate().is_ok());
        for bad in [
            TrainingPlan {
                epochs: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                update_density: 0.0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                update_density: 1.5,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                write_verify_iterations: 0,
                ..TrainingPlan::default()
            },
            TrainingPlan {
                endurance_cycles: 0.0,
                ..TrainingPlan::default()
            },
        ] {
            assert!(bad.validate().is_err(), "{bad:?}");
        }
    }

    #[test]
    fn writes_dominate_training_energy() {
        // The paper's §II.B motivation in reverse: once weights must be
        // *updated* every step, the write cost dwarfs the compute cost.
        let cost = estimate_training(&config(), &TrainingPlan::default()).unwrap();
        assert!(
            cost.write_energy.joules() > cost.compute_energy.joules(),
            "writes {} J vs compute {} J",
            cost.write_energy.joules(),
            cost.compute_energy.joules()
        );
    }

    #[test]
    fn sparse_updates_cut_write_cost_proportionally() {
        let dense = estimate_training(&config(), &TrainingPlan::default()).unwrap();
        let sparse = estimate_training(
            &config(),
            &TrainingPlan {
                update_density: 0.1,
                ..TrainingPlan::default()
            },
        )
        .unwrap();
        let ratio = dense.write_energy.joules() / sparse.write_energy.joules();
        assert!((ratio - 10.0).abs() < 1e-6, "ratio {ratio}");
        // Compute cost is unchanged.
        assert_eq!(
            dense.compute_energy.joules(),
            sparse.compute_energy.joules()
        );
    }

    #[test]
    fn endurance_accounting() {
        let plan = TrainingPlan {
            samples_per_epoch: 100,
            epochs: 10,
            update_density: 1.0,
            write_verify_iterations: 3,
            endurance_cycles: 6000.0,
        };
        let cost = estimate_training(&config(), &plan).unwrap();
        // 1000 steps × 3 pulses = 3000 writes/cell; endurance 6000 → 50 %.
        assert!((cost.writes_per_cell - 3000.0).abs() < 1e-9);
        assert!((cost.endurance_consumed - 0.5).abs() < 1e-9);
    }

    #[test]
    fn total_energy_is_sum() {
        let cost = estimate_training(&config(), &TrainingPlan::default()).unwrap();
        assert!(
            (cost.total_energy().joules()
                - cost.compute_energy.joules()
                - cost.write_energy.joules())
            .abs()
                < 1e-18
        );
    }
}
