//! Digital peripheral building blocks: adders, adder trees, shifters,
//! subtractors, comparators, MUXes, registers and controllers.
//!
//! All models are transistor-count × technology-parameter estimates in the
//! style of the paper's §V.D ("MNSIM provides a reference transistor-level
//! design and uses the technology parameters from CACTI, NVSim, PTM…").

use mnsim_tech::cmos::CmosParams;

use crate::perf::ModulePerf;

/// A ripple-carry adder of the given bit width.
pub fn adder(cmos: &CmosParams, bits: u32) -> ModulePerf {
    let bits = bits.max(1);
    ModulePerf {
        area: cmos.full_adder_area * bits as f64,
        latency: cmos.full_adder_delay * bits as f64, // carry ripple
        dynamic_energy: cmos.full_adder_energy * bits as f64,
        leakage: cmos.leakage(28 * bits),
    }
}

/// A subtractor: an adder plus one inverter per bit (two's-complement).
pub fn subtractor(cmos: &CmosParams, bits: u32) -> ModulePerf {
    let bits = bits.max(1);
    let base = adder(cmos, bits);
    ModulePerf {
        area: base.area + cmos.gate_area * (bits as f64 * 0.5),
        latency: base.latency + cmos.fo4_delay,
        dynamic_energy: base.dynamic_energy + cmos.gate_energy * bits as f64,
        leakage: base.leakage + cmos.leakage(2 * bits),
    }
}

/// A binary adder tree merging `inputs` operands of `bits` width
/// (paper §III.B-2). Operand width grows by one bit per level.
///
/// Returns [`ModulePerf::ZERO`] for fewer than two inputs (nothing to
/// merge).
pub fn adder_tree(cmos: &CmosParams, inputs: usize, bits: u32) -> ModulePerf {
    if inputs < 2 {
        return ModulePerf::ZERO;
    }
    let levels = (inputs as f64).log2().ceil() as u32;
    let mut perf = ModulePerf::ZERO;
    let mut remaining = inputs;
    for level in 0..levels {
        let adders_here = remaining / 2;
        let width = bits + level;
        let one = adder(cmos, width);
        // Adders within a level operate in parallel; levels chain.
        let stage = one.replicate_parallel(adders_here);
        perf = ModulePerf {
            area: perf.area + stage.area,
            latency: perf.latency + stage.latency,
            dynamic_energy: perf.dynamic_energy + stage.dynamic_energy,
            leakage: perf.leakage + stage.leakage,
        };
        remaining = remaining / 2 + remaining % 2;
    }
    perf
}

/// Shift-and-add merge of `slices` weight bit-slices, each holding
/// `slice_bits` of the weight, into a `total_bits` result (paper §III.B-2:
/// "the shifters need to be added").
pub fn shift_add_merge(
    cmos: &CmosParams,
    slices: usize,
    slice_bits: u32,
    total_bits: u32,
) -> ModulePerf {
    if slices < 2 {
        return ModulePerf::ZERO;
    }
    // A fixed shift is wiring; the cost is the (slices − 1) adders at full
    // output width plus one register of pipeline state.
    let merge = adder(cmos, total_bits + slice_bits).repeat_sequential(slices - 1);
    let staging = register_bank(cmos, 1, total_bits + slice_bits);
    merge.chain(&staging)
}

/// An n-bit magnitude comparator (used by pooling and IF neurons).
pub fn comparator(cmos: &CmosParams, bits: u32) -> ModulePerf {
    let bits = bits.max(1);
    ModulePerf {
        area: cmos.gate_area * (3.0 * bits as f64),
        latency: cmos.fo4_delay * (bits as f64 / 2.0 + 2.0),
        dynamic_energy: cmos.gate_energy * (3.0 * bits as f64),
        leakage: cmos.leakage(12 * bits),
    }
}

/// An `inputs`-to-1 multiplexer of `bits` width (pass-gate implementation;
/// the read-circuit routing of paper §III.C-4).
pub fn mux(cmos: &CmosParams, inputs: usize, bits: u32) -> ModulePerf {
    if inputs < 2 {
        return ModulePerf::ZERO;
    }
    let stages = (inputs as f64).log2().ceil();
    let pass_gates = (inputs - 1) as u32 * bits;
    ModulePerf {
        area: cmos.transistor_area(2 * pass_gates),
        latency: cmos.fo4_delay * stages,
        dynamic_energy: cmos.gate_energy * (0.5 * pass_gates as f64),
        leakage: cmos.leakage(2 * pass_gates),
    }
}

/// A bank of `words` registers of `bits` each; one operation clocks the
/// whole bank once.
pub fn register_bank(cmos: &CmosParams, words: usize, bits: u32) -> ModulePerf {
    let flops = words as u32 * bits;
    ModulePerf {
        area: cmos.dff_area * flops as f64,
        latency: cmos.fo4_delay * 4.0, // clk-to-q + setup
        dynamic_energy: cmos.dff_energy * (flops as f64 * 0.5), // 50 % activity
        leakage: cmos.leakage(24 * flops),
    }
}

/// The bank controller: a cycle counter plus instruction decode for the
/// basic WRITE / READ / COMPUTE instruction set (paper §III.D).
pub fn controller(cmos: &CmosParams, max_count: usize) -> ModulePerf {
    let width = (max_count.max(2) as f64).log2().ceil() as u32;
    let counter = register_bank(cmos, 1, width);
    let decode_gates = 8 * width;
    ModulePerf {
        area: counter.area + cmos.gate_area * decode_gates as f64,
        latency: counter.latency + cmos.fo4_delay * 2.0,
        dynamic_energy: counter.dynamic_energy + cmos.gate_energy * decode_gates as f64 * 0.25,
        leakage: counter.leakage + cmos.leakage(4 * decode_gates),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    fn p90() -> CmosParams {
        CmosNode::N90.params()
    }

    #[test]
    fn adder_scales_with_width() {
        let a8 = adder(&p90(), 8);
        let a16 = adder(&p90(), 16);
        assert!((a16.area / a8.area - 2.0).abs() < 1e-12);
        assert!((a16.latency / a8.latency - 2.0).abs() < 1e-12);
        assert!(a16.leakage.watts() > a8.leakage.watts());
    }

    #[test]
    fn subtractor_slightly_larger_than_adder() {
        let a = adder(&p90(), 8);
        let s = subtractor(&p90(), 8);
        assert!(s.area.square_meters() > a.area.square_meters());
        assert!(s.area.square_meters() < 1.5 * a.area.square_meters());
    }

    #[test]
    fn adder_tree_structure() {
        let cmos = p90();
        // 2 inputs: exactly one adder.
        let t2 = adder_tree(&cmos, 2, 8);
        let a = adder(&cmos, 8);
        assert_eq!(t2.area, a.area);
        // 4 inputs: 2 + 1 adders, two levels of latency.
        let t4 = adder_tree(&cmos, 4, 8);
        assert!(t4.area.square_meters() > 2.9 * a.area.square_meters());
        assert!(t4.latency.seconds() > 1.9 * a.latency.seconds());
        // fewer than 2 inputs: nothing.
        assert_eq!(adder_tree(&cmos, 1, 8), ModulePerf::ZERO);
        assert_eq!(adder_tree(&cmos, 0, 8), ModulePerf::ZERO);
    }

    #[test]
    fn adder_tree_handles_non_power_of_two() {
        let t3 = adder_tree(&p90(), 3, 8);
        let t4 = adder_tree(&p90(), 4, 8);
        assert!(t3.area.square_meters() < t4.area.square_meters());
        assert!(t3.area.square_meters() > 0.0);
    }

    #[test]
    fn shift_add_merge_counts_slices() {
        let cmos = p90();
        assert_eq!(shift_add_merge(&cmos, 1, 4, 8), ModulePerf::ZERO);
        let m2 = shift_add_merge(&cmos, 2, 4, 8);
        let m4 = shift_add_merge(&cmos, 4, 4, 8);
        assert!(m4.latency.seconds() > m2.latency.seconds());
        assert!(m4.dynamic_energy.joules() > m2.dynamic_energy.joules());
    }

    #[test]
    fn mux_grows_with_inputs() {
        let cmos = p90();
        assert_eq!(mux(&cmos, 1, 8), ModulePerf::ZERO);
        let m4 = mux(&cmos, 4, 8);
        let m16 = mux(&cmos, 16, 8);
        assert!(m16.area.square_meters() > m4.area.square_meters());
        assert!(m16.latency.seconds() > m4.latency.seconds());
    }

    #[test]
    fn register_bank_and_controller() {
        let cmos = p90();
        let r = register_bank(&cmos, 64, 8);
        assert!(r.area.square_meters() > 0.0);
        let small = controller(&cmos, 4);
        let big = controller(&cmos, 1024);
        assert!(big.area.square_meters() > small.area.square_meters());
    }

    #[test]
    fn comparator_reasonable() {
        let c = comparator(&p90(), 8);
        let a = adder(&p90(), 8);
        assert!(c.area.square_meters() < a.area.square_meters());
        assert!(c.latency.seconds() < a.latency.seconds());
    }
}
