//! DAC / ADC wrappers producing [`ModulePerf`] records at the configured
//! CMOS node (paper §V.C).
//!
//! The ADC precision is taken directly from the algorithm's output
//! precision (the paper's §V.C rule: "the precision of ADC can be directly
//! configured according to the algorithm requirements") and the reference
//! read circuit is a 50 MHz variable-level sensing amplifier.

use mnsim_tech::cmos::CmosNode;
use mnsim_tech::converters::{AdcSpec, DacSpec};
use mnsim_tech::error::TechError;
use mnsim_tech::units::Frequency;

use crate::perf::ModulePerf;

/// The reference read circuit: a multilevel SA of `bits` precision scaled
/// to `node`. One operation is one conversion.
pub fn reference_adc(node: CmosNode, bits: u32) -> ModulePerf {
    let spec = AdcSpec::multilevel_sa(bits).scaled_to(node);
    adc_perf(&spec)
}

/// Selects the lowest-power ADC from the database meeting `bits` and
/// `min_frequency`, scaled to `node`.
///
/// # Errors
///
/// Returns [`TechError::NoConverter`] if nothing in the database qualifies.
pub fn select_adc(
    node: CmosNode,
    bits: u32,
    min_frequency: Frequency,
) -> Result<ModulePerf, TechError> {
    let spec = AdcSpec::select(bits, min_frequency)?.scaled_to(node);
    Ok(adc_perf(&spec))
}

/// Converts an [`AdcSpec`] into a per-conversion [`ModulePerf`].
pub fn adc_perf(spec: &AdcSpec) -> ModulePerf {
    ModulePerf {
        area: spec.area,
        latency: spec.conversion_time(),
        dynamic_energy: spec.conversion_energy(),
        // Converters are analog blocks: a fixed fraction (10 %) of active
        // power leaks when idle.
        leakage: spec.power * 0.1,
    }
}

/// The reference input DAC of `bits` precision scaled to `node`. One
/// operation is one input-vector drive (all DACs settle in parallel, so
/// per-DAC latency is the line latency).
pub fn reference_dac(node: CmosNode, bits: u32) -> ModulePerf {
    let spec = DacSpec::reference(bits).scaled_to(node);
    ModulePerf {
        area: spec.area,
        latency: spec.settle_time,
        dynamic_energy: spec.conversion_energy(),
        leakage: spec.power * 0.1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_adc_latency_tracks_50mhz() {
        // At its native 90 nm node the SA converts in 20 ns.
        let adc = reference_adc(CmosNode::N90, 6);
        assert!((adc.latency.nanoseconds() - 20.0).abs() < 1e-9);
        // Scaled to 45 nm it is faster.
        let scaled = reference_adc(CmosNode::N45, 6);
        assert!(scaled.latency.nanoseconds() < 20.0);
    }

    #[test]
    fn adc_energy_grows_with_precision() {
        let low = reference_adc(CmosNode::N45, 4);
        let high = reference_adc(CmosNode::N45, 8);
        assert!(high.dynamic_energy.joules() > low.dynamic_energy.joules());
        assert!(high.area.square_meters() > low.area.square_meters());
    }

    #[test]
    fn select_adc_honours_speed() {
        let fast = select_adc(CmosNode::N32, 8, Frequency::from_megahertz(400.0)).unwrap();
        let slow = select_adc(CmosNode::N32, 8, Frequency::from_megahertz(1.0)).unwrap();
        assert!(fast.latency.seconds() < slow.latency.seconds());
        assert!(select_adc(CmosNode::N32, 12, Frequency::from_megahertz(1.0)).is_err());
    }

    #[test]
    fn dac_perf_positive_and_scales() {
        let d90 = reference_dac(CmosNode::N90, 8);
        let d45 = reference_dac(CmosNode::N45, 8);
        assert!(d90.area.square_meters() > d45.area.square_meters());
        assert!(d90.dynamic_energy.joules() > 0.0);
        assert!(d45.latency.seconds() < d90.latency.seconds());
    }
}
