//! Non-linear neuron circuit models (paper §III.B-4).
//!
//! The reference designs are: a LUT-based sigmoid for DNN, a comparator +
//! mux ReLU for CNN, and an accumulate-and-fire circuit for SNN.

use mnsim_tech::cmos::CmosParams;

use crate::config::NetworkType;
use crate::modules::digital::{adder, comparator, mux, register_bank};
use crate::perf::ModulePerf;

/// A LUT-based sigmoid neuron: `2^bits × bits` ROM plus its small address
/// decoder.
pub fn sigmoid(cmos: &CmosParams, bits: u32) -> ModulePerf {
    let entries = 1u32 << bits.min(12);
    let rom_bits = entries * bits;
    // ROM cell ≈ 1 transistor; address decode ≈ entries gates.
    ModulePerf {
        area: cmos.transistor_area(rom_bits) + cmos.gate_area * entries as f64,
        latency: cmos.fo4_delay * (bits as f64 + 4.0),
        dynamic_energy: cmos.gate_energy * (bits as f64 * 4.0),
        leakage: cmos.leakage(rom_bits / 8 + entries),
    }
}

/// A ReLU neuron: a sign comparator gating a word-wide mux.
pub fn relu(cmos: &CmosParams, bits: u32) -> ModulePerf {
    comparator(cmos, bits).chain(&mux(cmos, 2, bits))
}

/// An integrate-and-fire neuron: an accumulator register + adder +
/// threshold comparator.
pub fn integrate_fire(cmos: &CmosParams, bits: u32) -> ModulePerf {
    adder(cmos, bits)
        .chain(&register_bank(cmos, 1, bits))
        .chain(&comparator(cmos, bits))
}

/// The reference neuron for a network type (paper §III.B-4: sigmoid for
/// DNN, integrate-and-fire for SNN, ReLU for CNN).
pub fn reference_neuron(cmos: &CmosParams, network_type: NetworkType, bits: u32) -> ModulePerf {
    match network_type {
        NetworkType::Ann => sigmoid(cmos, bits),
        NetworkType::Snn => integrate_fire(cmos, bits),
        NetworkType::Cnn => relu(cmos, bits),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    #[test]
    fn relu_is_cheapest_sigmoid_is_biggest() {
        let cmos = CmosNode::N45.params();
        let s = sigmoid(&cmos, 8);
        let r = relu(&cmos, 8);
        let i = integrate_fire(&cmos, 8);
        assert!(r.area.square_meters() < i.area.square_meters());
        assert!(i.area.square_meters() < s.area.square_meters());
    }

    #[test]
    fn sigmoid_rom_grows_exponentially_with_bits() {
        let cmos = CmosNode::N45.params();
        let s4 = sigmoid(&cmos, 4).area.square_meters();
        let s8 = sigmoid(&cmos, 8).area.square_meters();
        assert!(s8 / s4 > 8.0);
    }

    #[test]
    fn reference_neuron_dispatch() {
        let cmos = CmosNode::N45.params();
        assert_eq!(
            reference_neuron(&cmos, NetworkType::Ann, 8),
            sigmoid(&cmos, 8)
        );
        assert_eq!(
            reference_neuron(&cmos, NetworkType::Cnn, 8),
            relu(&cmos, 8)
        );
        assert_eq!(
            reference_neuron(&cmos, NetworkType::Snn, 8),
            integrate_fire(&cmos, 8)
        );
    }

    #[test]
    fn all_neurons_have_positive_perf() {
        let cmos = CmosNode::N90.params();
        for t in [NetworkType::Ann, NetworkType::Snn, NetworkType::Cnn] {
            let n = reference_neuron(&cmos, t, 8);
            assert!(n.area.square_meters() > 0.0);
            assert!(n.latency.seconds() > 0.0);
            assert!(n.dynamic_energy.joules() > 0.0);
            assert!(n.leakage.watts() > 0.0);
        }
    }
}
