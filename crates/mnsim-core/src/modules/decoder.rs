//! Address decoder models (paper §V.B, Fig. 4).
//!
//! Memory mode uses the classic address decoder (Fig. 4a): an address
//! selector drives one transfer gate. The computation-oriented decoder
//! (Fig. 4b) adds a NOR gate per line so a single control signal can turn
//! *all* transfer gates on during COMPUTE — the paper's §II.C point that a
//! memory-style one-cell-at-a-time selector cannot feed a crossbar
//! computation.

use mnsim_tech::cmos::CmosParams;

use crate::perf::ModulePerf;

/// The memory-oriented decoder of Fig. 4(a) for `lines` word/bit lines:
/// one `log2(lines)`-input AND per line plus a transfer gate.
pub fn memory_decoder(cmos: &CmosParams, lines: usize) -> ModulePerf {
    let lines_u = lines.max(2) as u32;
    let addr_bits = (lines.max(2) as f64).log2().ceil() as u32;
    // Per line: an address AND tree (addr_bits − 1 two-input gates) plus
    // address inverters shared across lines.
    let gates = lines_u * addr_bits + addr_bits;
    let transfer_transistors = 2 * lines_u;
    ModulePerf {
        area: cmos.gate_area * gates as f64 + cmos.transistor_area(transfer_transistors),
        latency: cmos.fo4_delay * (addr_bits as f64 + 1.0),
        // In memory mode only one line switches per access.
        dynamic_energy: cmos.gate_energy * (addr_bits as f64 + 1.0),
        leakage: cmos.leakage(4 * gates + transfer_transistors),
    }
}

/// The computation-oriented decoder of Fig. 4(b): the memory decoder plus
/// one NOR gate per line driven by the COMPUTE control signal.
///
/// The returned `dynamic_energy` is the cost of one COMPUTE selection —
/// every line's NOR and transfer gate switches.
pub fn compute_decoder(cmos: &CmosParams, lines: usize) -> ModulePerf {
    let base = memory_decoder(cmos, lines);
    let lines_u = lines.max(2) as u32;
    ModulePerf {
        area: base.area + cmos.gate_area * lines_u as f64,
        // One extra NOR on the selection path.
        latency: base.latency + cmos.fo4_delay,
        // COMPUTE turns on all lines at once: `lines` NOR gates and
        // transfer gates switch.
        dynamic_energy: base.dynamic_energy + cmos.gate_energy * (2.0 * lines_u as f64),
        leakage: base.leakage + cmos.leakage(4 * lines_u),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    #[test]
    fn compute_decoder_extends_memory_decoder() {
        let cmos = CmosNode::N90.params();
        let mem = memory_decoder(&cmos, 128);
        let comp = compute_decoder(&cmos, 128);
        assert!(comp.area.square_meters() > mem.area.square_meters());
        assert!(comp.latency.seconds() > mem.latency.seconds());
        assert!(comp.dynamic_energy.joules() > mem.dynamic_energy.joules());
    }

    #[test]
    fn compute_energy_scales_with_lines_memory_does_not() {
        let cmos = CmosNode::N90.params();
        let c64 = compute_decoder(&cmos, 64).dynamic_energy.joules();
        let c256 = compute_decoder(&cmos, 256).dynamic_energy.joules();
        assert!(c256 > 3.0 * c64, "all-line selection grows with size");

        let m64 = memory_decoder(&cmos, 64).dynamic_energy.joules();
        let m256 = memory_decoder(&cmos, 256).dynamic_energy.joules();
        assert!(m256 < 2.0 * m64, "one-line selection grows only with address width");
    }

    #[test]
    fn latency_grows_logarithmically() {
        let cmos = CmosNode::N90.params();
        let l16 = memory_decoder(&cmos, 16).latency.seconds();
        let l256 = memory_decoder(&cmos, 256).latency.seconds();
        // 4 address bits → 8 address bits: latency grows but far less than 2×.
        assert!(l256 > l16);
        assert!(l256 < 2.0 * l16);
    }

    #[test]
    fn tiny_decoders_are_well_defined() {
        let cmos = CmosNode::N45.params();
        let d = compute_decoder(&cmos, 1);
        assert!(d.area.square_meters() > 0.0);
        assert!(d.latency.seconds() > 0.0);
    }
}
