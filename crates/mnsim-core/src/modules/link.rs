//! Inter-bank global interconnect links.
//!
//! The computation banks of a multi-layer accelerator are physically
//! separate blocks; moving a bank's outputs to the next bank's input
//! buffers crosses a global wire whose length scales with the bank
//! footprint. The paper folds this into the buffer models; we expose it
//! explicitly so that floorplan-dependent effects (big banks → long hops)
//! are visible in the aggregation.

use mnsim_tech::cmos::CmosParams;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::units::{Area, Energy, Time};

use crate::perf::ModulePerf;

/// A repeatered global link of `bits` wires and `length_m` metres. One
/// operation transfers one `bits`-wide word.
pub fn interbank_link(
    cmos: &CmosParams,
    interconnect: InterconnectNode,
    bits: u32,
    length_m: f64,
) -> ModulePerf {
    let length = length_m.max(0.0);
    let r = interconnect.global_wire_resistance(length).ohms();
    let c = interconnect.global_wire_capacitance(length).farads();
    let vdd = cmos.vdd.volts();

    // Driver + 0.7·RC Elmore delay of the (repeatered) line.
    let latency = cmos.fo4_delay * 4.0 + Time::from_seconds(0.7 * r * c);
    // Charging the wire at 50 % switching activity, per wire.
    let energy_per_bit = Energy::from_joules(0.5 * c * vdd * vdd);
    // Drivers + repeaters: ~8 transistors per wire per millimetre.
    let repeaters = (8.0 * (1.0 + length * 1e3)).ceil() as u32;

    ModulePerf {
        area: cmos.transistor_area(repeaters * bits),
        latency,
        dynamic_energy: energy_per_bit * bits as f64,
        leakage: cmos.leakage(repeaters * bits / 4),
    }
}

/// Estimates the hop length between two neighbouring banks from their
/// footprints: half the sum of the two blocks' side lengths.
pub fn hop_length(bank_a: Area, bank_b: Area) -> f64 {
    (bank_a.square_meters().sqrt() + bank_b.square_meters().sqrt()) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    #[test]
    fn longer_links_cost_more() {
        let cmos = CmosNode::N45.params();
        let short = interbank_link(&cmos, InterconnectNode::N28, 64, 0.5e-3);
        let long = interbank_link(&cmos, InterconnectNode::N28, 64, 5e-3);
        assert!(long.latency.seconds() > short.latency.seconds());
        assert!(long.dynamic_energy.joules() > short.dynamic_energy.joules());
        assert!(long.area.square_meters() > short.area.square_meters());
    }

    #[test]
    fn wider_links_cost_area_and_energy_not_latency() {
        let cmos = CmosNode::N45.params();
        let narrow = interbank_link(&cmos, InterconnectNode::N28, 8, 1e-3);
        let wide = interbank_link(&cmos, InterconnectNode::N28, 128, 1e-3);
        assert!((wide.dynamic_energy.joules() / narrow.dynamic_energy.joules() - 16.0).abs() < 1e-9);
        assert_eq!(wide.latency, narrow.latency);
    }

    #[test]
    fn millimetre_hop_is_subnanosecond_with_repeaters() {
        let cmos = CmosNode::N45.params();
        let link = interbank_link(&cmos, InterconnectNode::N45, 64, 1e-3);
        let ns = link.latency.nanoseconds();
        assert!(ns > 0.0 && ns < 5.0, "hop latency {ns} ns");
    }

    #[test]
    fn hop_length_from_footprints() {
        let a = Area::from_square_millimeters(4.0); // 2 mm side
        let b = Area::from_square_millimeters(1.0); // 1 mm side
        assert!((hop_length(a, b) - 1.5e-3).abs() < 1e-12);
    }
}
