//! Memristor-crossbar array performance model (paper §V.A).
//!
//! * **Area** — cell-count × per-cell area from Eqs. (7)/(8), corrected by
//!   the layout-calibration coefficient the paper extracts from its 130 nm
//!   layout (Fig. 6: 3420 µm² measured vs 2251 µm² estimated → ×1.519).
//! * **Computation power** — all cells selected; every cell is replaced by
//!   the harmonic mean of `R_min`/`R_max` (the paper's average-case rule).
//! * **Read power** — memory-style READ: a single cell selected.
//! * **Latency** — RC settling of word and bit lines.

use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::{Area, Energy, Power, Time};

/// Layout-overhead calibration coefficient measured from the paper's
/// 32×32 1T1R layout in 130 nm (Fig. 6): `3420 / 2251 ≈ 1.519`.
///
/// Users with their own layouts can substitute their measured coefficient
/// (paper §VII.A, last paragraph).
pub const AREA_CALIBRATION: f64 = 3420.0 / 2251.0;

/// Per-cell parasitic capacitance (junction + via), a small constant that
/// only enters the RC settle-time estimate.
const CELL_CAP_F: f64 = 1.0e-15;

/// The crossbar array model.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossbarModel<'a> {
    /// Physical rows/columns of the array.
    pub size: usize,
    /// Device model.
    pub device: &'a MemristorModel,
    /// Interconnect technology of the array wires.
    pub interconnect: InterconnectNode,
    /// Layout calibration coefficient (≥ 1).
    pub area_calibration: f64,
}

impl<'a> CrossbarModel<'a> {
    /// Creates the reference model with the Fig.-6 calibration.
    pub fn new(size: usize, device: &'a MemristorModel, interconnect: InterconnectNode) -> Self {
        CrossbarModel {
            size,
            device,
            interconnect,
            area_calibration: AREA_CALIBRATION,
        }
    }

    /// Array area: `size² × cell_area × calibration` (paper Eqs. 7–8 plus
    /// the layout coefficient).
    pub fn area(&self) -> Area {
        self.device.cell_area() * (self.size * self.size) as f64 * self.area_calibration
    }

    /// Average-case computation power with `rows_used × cols_used` cells
    /// active: every active cell at the harmonic-mean resistance, average
    /// input activity 1/2 (half of the input bits drive the line high).
    ///
    /// The naive estimate `M·N·V²/R` (the paper's §V.A rule) ignores that
    /// the word/bit lines are resistive ladders which throttle the current
    /// reaching distant cells — our circuit substrate shows up to a ~20×
    /// overestimate at 128×128/28 nm. This model therefore treats each row
    /// as a resistive transmission line with characteristic length
    /// `λ = √(R/r)` cells, rung resistance inflated by the bit-line
    /// congestion `R' = R·(1 + M/λ)`, and per-row input resistance
    /// `R_in = √(r·R')·coth(N·√(r/R'))`. The form converges to the naive
    /// rule as `r → 0` and matches the circuit solver within ±25 % across
    /// sizes 8–128 and wire nodes 18–90 nm.
    pub fn compute_power(&self, rows_used: usize, cols_used: usize) -> Power {
        let r_harm = self.device.harmonic_mean_resistance().ohms();
        let v = self.device.v_read.volts();
        let rows = rows_used.min(self.size) as f64;
        let cols = cols_used.min(self.size) as f64;
        let r_seg = self.interconnect.segment_resistance().ohms();

        let lambda = (r_harm / r_seg).sqrt();
        let rung = r_harm * (1.0 + rows / lambda);
        let arg = cols * (r_seg / rung).sqrt();
        // coth(x) = 1/tanh(x); for tiny arguments fall back to the exact
        // small-x limit R_in = R'/N (the parallel combination of all rungs).
        let r_in = if arg < 1e-6 {
            rung / cols
        } else {
            (r_seg * rung).sqrt() / arg.tanh()
        };
        Power::from_watts(rows * 0.5 * v * v / r_in)
    }

    /// Memory-READ power: a single selected cell at the harmonic-mean
    /// resistance.
    pub fn read_power(&self) -> Power {
        let r_harm = self.device.harmonic_mean_resistance().ohms();
        let v = self.device.v_read.volts();
        Power::from_watts(v * v / r_harm)
    }

    /// Energy of programming one cell (WRITE instruction).
    pub fn write_energy_per_cell(&self) -> Energy {
        let v = self.device.v_write.volts();
        // Write current flows through roughly the harmonic-mean resistance
        // for the duration of the programming pulse.
        let r = self.device.harmonic_mean_resistance().ohms();
        Power::from_watts(v * v / r) * self.device.write_latency
    }

    /// RC settle time of the analog computation: the worst-case word line
    /// (N wire segments + N cell loads) followed by the bit line.
    pub fn settle_latency(&self) -> Time {
        let n = self.size as f64;
        let r_seg = self.interconnect.segment_resistance().ohms();
        let c_seg = self.interconnect.segment_capacitance().farads() + CELL_CAP_F;
        // Elmore delay of a distributed RC line ≈ R·C·n²/2, for word line
        // and bit line in sequence; 2.2× for 10-90 % settling.
        let elmore = r_seg * c_seg * n * n / 2.0;
        Time::from_seconds(2.2 * 2.0 * elmore)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(size: usize, device: &MemristorModel) -> CrossbarModel<'_> {
        CrossbarModel::new(size, device, InterconnectNode::N28)
    }

    #[test]
    fn area_matches_eq7_with_calibration() {
        let device = MemristorModel::rram_default();
        let m = model(32, &device);
        // 1T1R, W/L = 2 → 9 F² per cell; F = 45 nm.
        let expected =
            9.0 * 45e-9 * 45e-9 * 32.0 * 32.0 * AREA_CALIBRATION;
        assert!((m.area().square_meters() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn area_calibration_matches_fig6_ratio() {
        assert!((AREA_CALIBRATION - 1.519).abs() < 1e-3);
    }

    #[test]
    fn compute_power_scales_with_active_cells() {
        let device = MemristorModel::rram_default();
        let m = model(128, &device);
        let full = m.compute_power(128, 128).watts();
        let half_rows = m.compute_power(64, 128).watts();
        let half_cols = m.compute_power(128, 64).watts();
        assert!(half_rows < full);
        assert!(half_cols < full);
        // Clamps to the physical array.
        let clamped = m.compute_power(1024, 1024).watts();
        assert_eq!(clamped, full);
    }

    #[test]
    fn compute_power_saturates_sublinearly_with_size() {
        // The ladder effect: doubling the array far less than quadruples
        // the power (the naive M·N rule would give exactly 4×).
        let device = MemristorModel::rram_default();
        let p64 = model(64, &device).compute_power(64, 64).watts();
        let p128 = model(128, &device).compute_power(128, 128).watts();
        assert!(p128 > p64);
        assert!(p128 / p64 < 3.0, "ratio {}", p128 / p64);
    }

    #[test]
    fn compute_power_approaches_naive_rule_for_tiny_arrays() {
        // With few cells and coarse wires the ladder correction is small:
        // within ~30 % of the naive M·N·V²/2R rule (wires already shave
        // ~20 % even at 8×8, per the circuit measurements).
        let device = MemristorModel::rram_default();
        let m = CrossbarModel::new(8, &device, InterconnectNode::N90);
        let p = m.compute_power(8, 8).watts();
        let naive = 64.0 * 0.5 * 0.25 / device.harmonic_mean_resistance().ohms();
        assert!(p < naive, "ladder correction only reduces power");
        assert!((p / naive - 1.0).abs() < 0.3, "{p} vs naive {naive}");
    }

    #[test]
    fn compute_power_dwarfs_read_power() {
        // The paper's point in §II.C: computation selects all cells, memory
        // READ selects one.
        let device = MemristorModel::rram_default();
        let m = model(128, &device);
        let ratio = m.compute_power(128, 128).watts() / m.read_power().watts();
        assert!(ratio > 100.0, "ratio {ratio}");
    }

    #[test]
    fn settle_latency_grows_quadratically() {
        let device = MemristorModel::rram_default();
        let t64 = model(64, &device).settle_latency().seconds();
        let t128 = model(128, &device).settle_latency().seconds();
        assert!((t128 / t64 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn settle_latency_worse_for_smaller_wires() {
        let device = MemristorModel::rram_default();
        let coarse = CrossbarModel::new(128, &device, InterconnectNode::N90);
        let fine = CrossbarModel::new(128, &device, InterconnectNode::N18);
        // Smaller node: much higher R, somewhat lower C — R wins.
        assert!(fine.settle_latency().seconds() > coarse.settle_latency().seconds());
    }

    #[test]
    fn write_energy_positive() {
        let device = MemristorModel::rram_default();
        let m = model(64, &device);
        assert!(m.write_energy_per_cell().joules() > 0.0);
    }
}
