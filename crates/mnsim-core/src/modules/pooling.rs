//! Pooling module and pooling line buffer (paper §III.B-3, Fig. 1(f)).
//!
//! The pooling module picks the maximum of a `k × k` window with a
//! comparator tree. Because the window's inputs arrive over multiple
//! cycles, a line buffer holds the live rows: one new value shifts in per
//! cycle and the registers covering the window feed the comparators.

use mnsim_tech::cmos::CmosParams;

use crate::modules::digital::{comparator, mux, register_bank};
use crate::perf::ModulePerf;

/// The `k × k` max-pooling comparator tree over `bits`-wide values.
pub fn pooling_module(cmos: &CmosParams, window: usize, bits: u32) -> ModulePerf {
    let inputs = window * window;
    if inputs < 2 {
        return ModulePerf::ZERO;
    }
    // A max of n values needs n−1 comparator+mux pairs arranged in a tree
    // of depth ceil(log2 n).
    let pair = comparator(cmos, bits).chain(&mux(cmos, 2, bits));
    let count = inputs - 1;
    let depth = (inputs as f64).log2().ceil();
    let all = pair.replicate_parallel(count);
    ModulePerf {
        area: all.area,
        latency: pair.latency * depth,
        dynamic_energy: all.dynamic_energy,
        leakage: all.leakage,
    }
}

/// The pooling/output line buffer of Fig. 1(f): length per the paper's
/// Eq. (6), `L = W·(h − 1) + w`, where `W` is the feature-map width and
/// `h × w` is the window consuming the data.
pub fn line_buffer_length(feature_width: usize, window_h: usize, window_w: usize) -> usize {
    feature_width * (window_h.saturating_sub(1)) + window_w
}

/// A line buffer of `length` entries of `bits` each; one operation is one
/// shift (every register clocks).
pub fn line_buffer(cmos: &CmosParams, length: usize, bits: u32) -> ModulePerf {
    register_bank(cmos, length, bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    #[test]
    fn pooling_module_sizes() {
        let cmos = CmosNode::N45.params();
        let p2 = pooling_module(&cmos, 2, 8); // 4 inputs → 3 pairs
        let p3 = pooling_module(&cmos, 3, 8); // 9 inputs → 8 pairs
        assert!(p3.area.square_meters() > 2.0 * p2.area.square_meters());
        assert!(p3.latency.seconds() > p2.latency.seconds());
        assert_eq!(pooling_module(&cmos, 1, 8), ModulePerf::ZERO);
    }

    #[test]
    fn line_buffer_length_matches_eq6() {
        // Paper Eq. (6): W^{i+1}·(h−1) + w.
        assert_eq!(line_buffer_length(224, 3, 3), 224 * 2 + 3);
        assert_eq!(line_buffer_length(28, 2, 2), 28 + 2);
        // 1×1 window needs a single register.
        assert_eq!(line_buffer_length(100, 1, 1), 1);
    }

    #[test]
    fn line_buffer_scales_with_length() {
        let cmos = CmosNode::N45.params();
        let short = line_buffer(&cmos, 30, 8);
        let long = line_buffer(&cmos, 451, 8);
        assert!(long.area.square_meters() > 10.0 * short.area.square_meters());
        // Latency per shift is one clock edge regardless of length.
        assert_eq!(long.latency, short.latency);
    }
}
