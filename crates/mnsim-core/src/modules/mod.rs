//! Reference circuit-module performance models (paper §V).
//!
//! Every function here returns a [`crate::perf::ModulePerf`] — the
//! area/latency/energy/leakage record the hierarchical aggregation
//! consumes. Modules:
//!
//! * [`crossbar`] — the memristor array (area Eqs. 7-8, average-case power,
//!   RC settling),
//! * [`decoder`] — memory- and computation-oriented decoders (Fig. 4),
//! * [`converters`] — DAC / ADC / multilevel-SA wrappers,
//! * [`digital`] — adders, adder trees, shifters, MUXes, registers,
//!   controllers,
//! * [`neuron`] — sigmoid / ReLU / integrate-and-fire neuron circuits,
//! * [`pooling`] — pooling comparator tree and line buffers (Eq. 6),
//! * [`interface`] — accelerator I/O interfaces.
//!
//! Every model is a pure function of its arguments (no globals, no
//! interior mutability), so the parallel bank evaluation in
//! [`crate::exec`]-driven pipelines calls them concurrently from worker
//! threads without synchronization; higher levels keep results
//! bit-identical by reducing the returned records in canonical order
//! (see [`crate::perf::ModulePerf::chain_all`]).

pub mod converters;
pub mod crossbar;
pub mod decoder;
pub mod digital;
pub mod interface;
pub mod link;
pub mod neuron;
pub mod pooling;
