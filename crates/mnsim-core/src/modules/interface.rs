//! Accelerator I/O interface modules (paper §III.A).
//!
//! The input module buffers a full sample arriving over
//! `Interface_Number[0]` bus wires before releasing it to the first
//! computation bank (keeping the crossbars fully parallel); the output
//! module streams the final results out over `Interface_Number[1]` wires.

use mnsim_tech::cmos::CmosParams;

use crate::modules::digital::{controller, register_bank};
use crate::perf::ModulePerf;

/// An interface buffering `elements` values of `bits` each and moving them
/// over `lines` bus wires. One operation is one full sample transfer.
pub fn interface(cmos: &CmosParams, elements: usize, bits: u32, lines: usize) -> ModulePerf {
    let lines = lines.max(1);
    let total_bits = elements as u64 * bits as u64;
    let cycles = total_bits.div_ceil(lines as u64).max(1);
    // Bus clock: a conservative 20 FO4 cycle.
    let bus_cycle = cmos.fo4_delay * 20.0;

    let buffer = register_bank(cmos, elements, bits);
    let sequencer = controller(cmos, cycles as usize);
    ModulePerf {
        area: buffer.area + sequencer.area,
        latency: bus_cycle * cycles as f64,
        // Each cycle clocks `lines` bits of the buffer plus the sequencer.
        dynamic_energy: (cmos.dff_energy * lines as f64 + sequencer.dynamic_energy)
            * cycles as f64,
        leakage: buffer.leakage + sequencer.leakage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::cmos::CmosNode;

    #[test]
    fn transfer_cycles_follow_bus_width() {
        let cmos = CmosNode::N90.params();
        // 128 values × 8 bits over 128 wires → 8 cycles;
        // over 256 wires → 4 cycles.
        let narrow = interface(&cmos, 128, 8, 128);
        let wide = interface(&cmos, 128, 8, 256);
        assert!((narrow.latency.seconds() / wide.latency.seconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn buffer_dominates_area() {
        let cmos = CmosNode::N90.params();
        let small = interface(&cmos, 64, 8, 128);
        let large = interface(&cmos, 1024, 8, 128);
        assert!(large.area.square_meters() > 10.0 * small.area.square_meters());
    }

    #[test]
    fn degenerate_widths_are_safe() {
        let cmos = CmosNode::N45.params();
        let i = interface(&cmos, 1, 1, 0); // lines clamped to 1
        assert!(i.latency.seconds() > 0.0);
        assert!(i.area.square_meters() > 0.0);
    }
}
