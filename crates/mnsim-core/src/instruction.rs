//! The basic instruction set and its cost model (paper §III.D).
//!
//! An application-specific memristor accelerator needs only three
//! instructions: WRITE (program a cell), READ (memory-mode read-back) and
//! COMPUTE (one matrix-vector multiplication of a bank). MNSIM prices a
//! program by replaying it against the evaluated hierarchy; richer
//! instruction sets are a documented customization point.

use mnsim_tech::units::{Energy, Time};

use crate::config::Config;
use crate::error::CoreError;
use crate::simulate::{simulate, Report};

/// One instruction of the basic set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instruction {
    /// Program one memristor cell of the given bank.
    Write {
        /// Target bank index.
        bank: usize,
    },
    /// Memory-mode read of one cell of the given bank.
    Read {
        /// Target bank index.
        bank: usize,
    },
    /// One matrix-vector multiplication cycle of the given bank (all its
    /// units fire).
    Compute {
        /// Target bank index.
        bank: usize,
    },
}

impl Instruction {
    /// The bank the instruction addresses.
    pub fn bank(&self) -> usize {
        match *self {
            Instruction::Write { bank }
            | Instruction::Read { bank }
            | Instruction::Compute { bank } => bank,
        }
    }
}

/// A straight-line program of basic instructions.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Program {
    instructions: Vec<Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends one instruction.
    pub fn push(&mut self, instruction: Instruction) -> &mut Self {
        self.instructions.push(instruction);
        self
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// A program that writes every weight of every bank once — the
    /// one-time network-loading phase the paper's §II.B argues is
    /// amortized away during inference.
    pub fn load_network(config: &Config) -> Self {
        let mut program = Program::new();
        for (bank, descriptor) in config.network.banks.iter().enumerate() {
            for _ in 0..descriptor.weight_count() {
                program.push(Instruction::Write { bank });
            }
        }
        program
    }

    /// A program that runs `samples` inputs through the whole network
    /// (each sample issues every bank's per-sample COMPUTE cycles).
    pub fn run_samples(config: &Config, samples: usize) -> Self {
        let mut program = Program::new();
        for _ in 0..samples {
            for (bank, descriptor) in config.network.banks.iter().enumerate() {
                for _ in 0..descriptor.ops_per_sample() {
                    program.push(Instruction::Compute { bank });
                }
            }
        }
        program
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` if the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// The replay cost of a program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ProgramCost {
    /// Total (sequential) execution time.
    pub latency: Time,
    /// Total dynamic energy.
    pub energy: Energy,
}

/// Prices a program against the evaluated hierarchy of `report`.
///
/// # Errors
///
/// Returns [`CoreError::InvalidConfig`] if an instruction addresses a bank
/// the network does not have.
pub fn execute(report: &Report, program: &Program) -> Result<ProgramCost, CoreError> {
    let banks = &report.accelerator.banks;
    let mut latency = Time::ZERO;
    let mut energy = Energy::ZERO;
    for instruction in program.instructions() {
        let bank = banks
            .get(instruction.bank())
            .ok_or(CoreError::InvalidConfig {
                parameter: "Program",
                reason: format!(
                    "instruction addresses bank {} but the network has {}",
                    instruction.bank(),
                    banks.len()
                ),
            })?;
        match instruction {
            Instruction::Write { .. } => {
                latency += bank.unit.write_access.latency;
                energy += bank.unit.write_access.dynamic_energy;
            }
            Instruction::Read { .. } => {
                latency += bank.unit.read_access.latency;
                energy += bank.unit.read_access.dynamic_energy;
            }
            Instruction::Compute { .. } => {
                latency += bank.cycle.latency;
                energy += bank.cycle.dynamic_energy;
            }
        }
    }
    Ok(ProgramCost { latency, energy })
}

/// Convenience: simulate `config` and price the program in one call.
///
/// # Errors
///
/// Propagates simulation and replay errors.
pub fn simulate_program(config: &Config, program: &Program) -> Result<ProgramCost, CoreError> {
    let report = simulate(config)?;
    execute(&report, program)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::fully_connected_mlp(&[64, 32]).unwrap()
    }

    #[test]
    fn load_network_counts_weights() {
        let c = config();
        let p = Program::load_network(&c);
        assert_eq!(p.len(), 64 * 32);
    }

    #[test]
    fn run_samples_counts_computes() {
        let c = config();
        let p = Program::run_samples(&c, 3);
        assert_eq!(p.len(), 3); // one FC bank × 1 op × 3 samples
        assert!(matches!(p.instructions()[0], Instruction::Compute { bank: 0 }));
    }

    #[test]
    fn compute_costs_more_than_read() {
        let c = config();
        let report = simulate(&c).unwrap();
        let mut reads = Program::new();
        reads.push(Instruction::Read { bank: 0 });
        let mut computes = Program::new();
        computes.push(Instruction::Compute { bank: 0 });
        let read_cost = execute(&report, &reads).unwrap();
        let compute_cost = execute(&report, &computes).unwrap();
        assert!(compute_cost.energy.joules() > read_cost.energy.joules());
    }

    #[test]
    fn writing_dominates_loading_phase() {
        // Loading a 64×32 network cell by cell takes far longer than one
        // inference — the paper's motivation for fixed weights.
        let c = config();
        let report = simulate(&c).unwrap();
        let load = execute(&report, &Program::load_network(&c)).unwrap();
        let infer = execute(&report, &Program::run_samples(&c, 1)).unwrap();
        assert!(load.latency.seconds() > 100.0 * infer.latency.seconds());
    }

    #[test]
    fn unknown_bank_rejected() {
        let c = config();
        let report = simulate(&c).unwrap();
        let mut p = Program::new();
        p.push(Instruction::Compute { bank: 7 });
        assert!(execute(&report, &p).is_err());
    }

    #[test]
    fn cost_is_additive() {
        let c = config();
        let report = simulate(&c).unwrap();
        let one = execute(&report, &Program::run_samples(&c, 1)).unwrap();
        let five = execute(&report, &Program::run_samples(&c, 5)).unwrap();
        assert!((five.latency.seconds() - 5.0 * one.latency.seconds()).abs() < 1e-15);
        assert!((five.energy.joules() - 5.0 * one.energy.joules()).abs() < 1e-15);
    }
}
