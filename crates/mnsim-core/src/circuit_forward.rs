//! Circuit-backed neural-network layer forward passes.
//!
//! [`CircuitLayer`] maps one weight matrix onto its dual-crossbar circuits
//! once ([`map_weights`]) and then evaluates arbitrarily many activation
//! vectors against them through
//! [`PreparedSystem`] batches: the nodal system is assembled (and, below
//! the dense cutoff, LU-factored) a single time per polarity, every
//! activation becomes a re-driven right-hand side, and consecutive solves
//! warm-start CG from the previous solution. This is the circuit-level
//! counterpart of the behavior-level matrix-vector product the paper's
//! computation units perform.
//!
//! [`CircuitLayer::forward_batch_with`] shards a batch over the worker
//! pool: each worker solves a contiguous, deterministic
//! [`exec::shard_ranges`] slice against its own clone of the prepared
//! systems, so the factorization caches are shared read-only and the
//! warm-start chain inside each shard is reproducible for a fixed shard
//! count.

use mnsim_circuit::batch::{BatchOptions, PreparedSystem};
use mnsim_circuit::crossbar::CrossbarCircuit;
use mnsim_nn::tensor::Tensor;
use mnsim_tech::units::Voltage;

use crate::config::Config;
use crate::error::CoreError;
use crate::exec::{self, ExecOptions};
use crate::netlist_gen::map_weights;

/// The immutable half of a [`CircuitLayer`]: geometry and built circuits,
/// shared read-only by every solving thread.
#[derive(Debug)]
struct Circuits {
    rows: usize,
    cols: usize,
    v_read: Voltage,
    positive: CrossbarCircuit,
    negative: Option<CrossbarCircuit>,
}

impl Circuits {
    /// Word-line drive voltages for one activation vector (`v_read · x`,
    /// clamped to `[0, 1]` — the [`map_weights`] input mapping).
    fn drive_voltages(&self, activations: &[f64]) -> Result<Vec<Voltage>, CoreError> {
        if activations.len() != self.rows {
            return Err(CoreError::Nn(mnsim_nn::NnError::ShapeMismatch {
                expected: vec![self.rows],
                actual: vec![activations.len()],
                operation: "CircuitLayer activations",
            }));
        }
        Ok(activations
            .iter()
            .map(|&x| Voltage::from_volts(self.v_read.volts() * x.clamp(0.0, 1.0)))
            .collect())
    }

    /// Solves `batch` against the given prepared systems (the mutable
    /// warm-start/factorization state lives in the caller, so shards can
    /// solve concurrently against clones).
    fn solve_batch(
        &self,
        prepared_positive: &mut PreparedSystem,
        prepared_negative: &mut Option<PreparedSystem>,
        batch: &[Vec<f64>],
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let mut rhs_positive = Vec::with_capacity(batch.len());
        let mut rhs_negative = Vec::with_capacity(batch.len());
        for activations in batch {
            let drive = self.drive_voltages(activations)?;
            rhs_positive.push(self.positive.input_rhs(&drive)?);
            if let Some(built) = &self.negative {
                rhs_negative.push(built.input_rhs(&drive)?);
            }
        }

        let positive_solutions =
            prepared_positive.solve_batch(self.positive.circuit(), &rhs_positive)?;
        let positive_outputs: Vec<Vec<Voltage>> = positive_solutions
            .iter()
            .map(|solution| self.positive.output_voltages(solution))
            .collect();

        let negative_outputs: Option<Vec<Vec<Voltage>>> =
            match (&self.negative, prepared_negative) {
                (Some(built), Some(prepared)) => {
                    let solutions = prepared.solve_batch(built.circuit(), &rhs_negative)?;
                    Some(
                        solutions
                            .iter()
                            .map(|solution| built.output_voltages(solution))
                            .collect(),
                    )
                }
                _ => None,
            };

        Ok(positive_outputs
            .iter()
            .enumerate()
            .map(|(k, pos)| {
                (0..self.cols)
                    .map(|col| {
                        let n = negative_outputs
                            .as_ref()
                            .map_or(0.0, |neg| neg[k][col].volts());
                        pos[col].volts() - n
                    })
                    .collect()
            })
            .collect())
    }
}

/// One weight matrix mapped onto solvable crossbar circuits, with cached
/// prepared systems for repeated forward passes.
#[derive(Debug)]
pub struct CircuitLayer {
    circuits: Circuits,
    prepared_positive: PreparedSystem,
    prepared_negative: Option<PreparedSystem>,
}

impl CircuitLayer {
    /// Maps `weights` (shape `(outputs, inputs)`, values in `[-1, 1]`)
    /// under `config` and prepares the resulting circuits for batched
    /// solving.
    ///
    /// # Errors
    ///
    /// Same mapping conditions as [`map_weights`]; propagates circuit
    /// construction and preparation failures.
    pub fn new(config: &Config, weights: &Tensor) -> Result<Self, CoreError> {
        let shape = weights.shape();
        if shape.len() != 2 {
            return Err(CoreError::Nn(mnsim_nn::NnError::ShapeMismatch {
                expected: vec![0, 0],
                actual: shape.to_vec(),
                operation: "CircuitLayer::new",
            }));
        }
        let inputs = shape[1];
        // The mapped states are input-independent; the placeholder input
        // vector only seeds the spec's default drive, which every forward
        // pass overrides through the prepared system.
        let mapped = map_weights(config, weights, &vec![0.0; inputs])?;
        let options = BatchOptions::default();
        let positive = mapped.positive.build()?;
        let prepared_positive = PreparedSystem::build(positive.circuit(), options.clone())?;
        let (negative, prepared_negative) = match &mapped.negative {
            Some(spec) => {
                let built = spec.build()?;
                let prepared = PreparedSystem::build(built.circuit(), options)?;
                (Some(built), Some(prepared))
            }
            None => (None, None),
        };
        Ok(CircuitLayer {
            circuits: Circuits {
                rows: mapped.positive.rows,
                cols: mapped.positive.cols,
                v_read: config.device.v_read,
                positive,
                negative,
            },
            prepared_positive,
            prepared_negative,
        })
    }

    /// Input count (crossbar rows) of the layer.
    pub fn rows(&self) -> usize {
        self.circuits.rows
    }

    /// Output count (crossbar columns) of the layer.
    pub fn cols(&self) -> usize {
        self.circuits.cols
    }

    /// Wire-free ideal differential output voltages for one activation
    /// vector — the linear target the circuit approaches as wire
    /// resistance vanishes.
    ///
    /// # Errors
    ///
    /// Rejects an activation vector of the wrong length.
    pub fn ideal_forward(&self, activations: &[f64]) -> Result<Vec<f64>, CoreError> {
        let drive = self.circuits.drive_voltages(activations)?;
        let positive = self
            .circuits
            .positive
            .spec()
            .ideal_output_voltages_for(&drive);
        let negative = self
            .circuits
            .negative
            .as_ref()
            .map(|built| built.spec().ideal_output_voltages_for(&drive));
        Ok((0..self.circuits.cols)
            .map(|col| {
                let n = negative.as_ref().map_or(0.0, |v| v[col].volts());
                positive[col].volts() - n
            })
            .collect())
    }

    /// Remaps new weight values onto the layer's crossbars without
    /// discarding the cached solver state.
    ///
    /// Reprogramming changes cell conductances but not the circuit
    /// topology, so on the sparse-direct engine the cached symbolic
    /// analysis and elimination program are *refreshed* in place
    /// ([`PreparedSystem::try_value_refresh`] → the `solver.klu.refactor`
    /// fast path) instead of re-analyzed; other engines, or a weight shape
    /// that changes the geometry, fall back to a full rebuild.
    ///
    /// # Errors
    ///
    /// Same mapping conditions as [`CircuitLayer::new`].
    pub fn reprogram(&mut self, config: &Config, weights: &Tensor) -> Result<(), CoreError> {
        let shape = weights.shape();
        if shape.len() != 2 {
            return Err(CoreError::Nn(mnsim_nn::NnError::ShapeMismatch {
                expected: vec![0, 0],
                actual: shape.to_vec(),
                operation: "CircuitLayer::reprogram",
            }));
        }
        let inputs = shape[1];
        let mapped = map_weights(config, weights, &vec![0.0; inputs])?;
        let options = BatchOptions::default();
        let positive = mapped.positive.build()?;
        if !self.prepared_positive.try_value_refresh(positive.circuit())? {
            self.prepared_positive = PreparedSystem::build(positive.circuit(), options.clone())?;
        }
        let (negative, prepared_negative) = match &mapped.negative {
            Some(spec) => {
                let built = spec.build()?;
                let refreshed = match self.prepared_negative.take() {
                    Some(mut prepared) => prepared
                        .try_value_refresh(built.circuit())?
                        .then_some(prepared),
                    None => None,
                };
                let prepared = match refreshed {
                    Some(prepared) => prepared,
                    None => PreparedSystem::build(built.circuit(), options)?,
                };
                (Some(built), Some(prepared))
            }
            None => (None, None),
        };
        self.circuits = Circuits {
            rows: mapped.positive.rows,
            cols: mapped.positive.cols,
            v_read: config.device.v_read,
            positive,
            negative,
        };
        self.prepared_negative = prepared_negative;
        Ok(())
    }

    /// Solves one activation vector; equivalent to a batch of one.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitLayer::forward_batch`].
    pub fn forward(&mut self, activations: &[f64]) -> Result<Vec<f64>, CoreError> {
        let mut out = self.forward_batch(std::slice::from_ref(&activations.to_vec()))?;
        out.pop().ok_or_else(|| CoreError::InvalidConfig {
            parameter: "forward",
            reason: "batch of one produced no solution".into(),
        })
    }

    /// Solves a batch of activation vectors (values in `[0, 1]`, length =
    /// [`CircuitLayer::rows`]) and returns the differential output
    /// voltages (positive minus negative crossbar) per vector, in volts.
    ///
    /// Both polarities reuse their cached factorization; CG solves
    /// warm-start from the previous activation in the batch (and from the
    /// previous call — the warm-start state persists on the layer).
    ///
    /// # Errors
    ///
    /// Rejects activation vectors of the wrong length; propagates solver
    /// failures.
    pub fn forward_batch(&mut self, batch: &[Vec<f64>]) -> Result<Vec<Vec<f64>>, CoreError> {
        self.circuits
            .solve_batch(&mut self.prepared_positive, &mut self.prepared_negative, batch)
    }

    /// [`CircuitLayer::forward_batch`] sharded over the worker pool.
    ///
    /// The batch is split into contiguous [`exec::shard_ranges`] slices —
    /// one per worker — and every worker solves its shard against a fresh
    /// **clone** of the layer's prepared systems, warm-starting only
    /// within the shard. Consequences of that design:
    ///
    /// * shard boundaries depend on `(batch length, thread count)` only,
    ///   so a run is **reproducible** for a fixed thread count;
    /// * below the dense-LU cutoff solutions are direct and warm-start
    ///   free, so the output is **bit-identical** to the serial batch at
    ///   any thread count; above it, CG answers agree within solver
    ///   tolerance but may differ in the last bits because each shard
    ///   restarts its warm-start chain;
    /// * the layer's own cached warm-start state is left untouched by the
    ///   parallel path (`threads <= 1` delegates to
    ///   [`forward_batch`](Self::forward_batch)
    ///   and advances it as usual).
    ///
    /// # Errors
    ///
    /// Same conditions as [`CircuitLayer::forward_batch`]; the error of
    /// the earliest failing shard is returned.
    pub fn forward_batch_with(
        &mut self,
        batch: &[Vec<f64>],
        options: &ExecOptions,
    ) -> Result<Vec<Vec<f64>>, CoreError> {
        let threads = options.resolved_threads().min(batch.len().max(1));
        if threads <= 1 {
            return self.forward_batch(batch);
        }
        let ranges = exec::shard_ranges(batch.len(), threads);
        let circuits = &self.circuits;
        let prepared_positive = &self.prepared_positive;
        let prepared_negative = &self.prepared_negative;
        let shard_outputs = exec::try_map_slice(&ranges, threads, |_, range| {
            let mut positive = prepared_positive.clone();
            let mut negative = prepared_negative.clone();
            circuits.solve_batch(&mut positive, &mut negative, &batch[range.clone()])
        })?;
        Ok(shard_outputs.into_iter().flatten().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WeightPolarity;
    use mnsim_tech::interconnect::InterconnectNode;

    fn config() -> Config {
        let mut c = Config::fully_connected_mlp(&[4, 2]).unwrap();
        c.crossbar_size = 4;
        // The ideal-output comparison wants wire resistance to be a small
        // perturbation: the finest node has the smallest segments.
        c.interconnect = InterconnectNode::N28;
        c
    }

    fn weights() -> Tensor {
        Tensor::from_vec(&[2, 4], vec![0.5, -0.25, 1.0, 0.0, -1.0, 0.75, 0.1, -0.6]).unwrap()
    }

    #[test]
    fn forward_tracks_ideal_at_small_wire_resistance() {
        let mut layer = CircuitLayer::new(&config(), &weights()).unwrap();
        assert_eq!(layer.rows(), 4);
        assert_eq!(layer.cols(), 2);
        let activations = vec![1.0, 0.5, 0.25, 0.75];
        let actual = layer.forward(&activations).unwrap();
        let ideal = layer.ideal_forward(&activations).unwrap();
        let v_read = config().device.v_read.volts();
        for (a, i) in actual.iter().zip(&ideal) {
            assert!(
                (a - i).abs() < 0.02 * v_read,
                "circuit {a} V vs ideal {i} V"
            );
        }
    }

    #[test]
    fn batch_matches_sequential_forwards_bitwise() {
        let batch = vec![
            vec![1.0, 0.5, 0.25, 0.75],
            vec![0.9, 0.55, 0.2, 0.7],
            vec![0.0, 1.0, 0.5, 0.1],
        ];
        let mut batched_layer = CircuitLayer::new(&config(), &weights()).unwrap();
        let batched = batched_layer.forward_batch(&batch).unwrap();

        let mut serial_layer = CircuitLayer::new(&config(), &weights()).unwrap();
        for (k, activations) in batch.iter().enumerate() {
            let single = serial_layer.forward(activations).unwrap();
            // The warm-start state advances identically whether the
            // activations arrive as one batch or one call at a time.
            assert_eq!(batched[k], single, "vector {k}");
        }
    }

    #[test]
    fn sharded_batch_is_bit_identical_below_dense_cutoff() {
        // 4×4 crossbars sit far below the dense-LU cutoff: every solve is
        // a direct factorization hit, so sharding cannot perturb a bit.
        let batch: Vec<Vec<f64>> = (0..17)
            .map(|k| {
                (0..4)
                    .map(|i| ((k * 4 + i) as f64 * 0.37).fract())
                    .collect()
            })
            .collect();
        let mut serial_layer = CircuitLayer::new(&config(), &weights()).unwrap();
        let serial = serial_layer.forward_batch(&batch).unwrap();
        for threads in [0usize, 2, 3, 7] {
            let mut layer = CircuitLayer::new(&config(), &weights()).unwrap();
            let sharded = layer
                .forward_batch_with(&batch, &ExecOptions::with_threads(threads))
                .unwrap();
            assert_eq!(serial, sharded, "threads={threads}");
        }
    }

    #[test]
    fn reprogram_matches_fresh_layer_bitwise() {
        // 8×8 crossbars (128 unknowns per polarity) select the
        // sparse-direct engine, so reprogramming exercises the in-place
        // value refresh — and its factors must be bit-identical to a cold
        // build's.
        let mut c = Config::fully_connected_mlp(&[8, 8]).unwrap();
        c.crossbar_size = 8;
        c.interconnect = InterconnectNode::N28;
        let w1 = Tensor::from_vec(
            &[8, 8],
            (0..64).map(|k| ((k as f64 * 0.13).sin())).collect(),
        )
        .unwrap();
        let w2 = Tensor::from_vec(
            &[8, 8],
            (0..64).map(|k| ((k as f64 * 0.29).cos() * 0.8)).collect(),
        )
        .unwrap();
        let batch = vec![vec![0.6; 8], (0..8).map(|i| i as f64 / 8.0).collect()];

        let mut layer = CircuitLayer::new(&c, &w1).unwrap();
        layer.forward_batch(&batch).unwrap();
        layer.reprogram(&c, &w2).unwrap();
        let reprogrammed = layer.forward_batch(&batch).unwrap();

        let mut fresh = CircuitLayer::new(&c, &w2).unwrap();
        let cold = fresh.forward_batch(&batch).unwrap();
        assert_eq!(reprogrammed, cold);
    }

    #[test]
    fn unsigned_polarity_has_no_negative_crossbar() {
        let mut c = config();
        c.weight_polarity = WeightPolarity::Unsigned;
        let w = Tensor::from_vec(&[2, 4], vec![0.5; 8]).unwrap();
        let mut layer = CircuitLayer::new(&c, &w).unwrap();
        let out = layer.forward(&[1.0; 4]).unwrap();
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn wrong_activation_arity_rejected() {
        let mut layer = CircuitLayer::new(&config(), &weights()).unwrap();
        assert!(layer.forward(&[1.0, 0.5]).is_err());
        assert!(layer.forward_batch(&[vec![0.2; 5]]).is_err());
        assert!(layer
            .forward_batch_with(&[vec![0.2; 5], vec![0.1; 4]], &ExecOptions::with_threads(2))
            .is_err());
    }
}
