//! The unified `Simulator` session facade.
//!
//! Historically every capability had its own entry point and its own
//! knobs: `simulate` (serial only), `simulate_with_faults` (threads on
//! [`FaultConfig`]), `explore_parallel` (a bare thread argument), and the
//! `--metrics` / `--trace` plumbing of the CLI front ends. [`Simulator`]
//! replaces that with one builder: configure once, then [`Simulator::run`]
//! a clean or faulty simulation, [`Simulator::explore`] a design space, or
//! [`Simulator::validate`] against the circuit baseline — all on the same
//! [`ExecOptions`] worker pool, with metrics and trace sessions owned by
//! the facade.
//!
//! ```
//! use mnsim_core::{Config, Simulator};
//!
//! # fn main() -> Result<(), mnsim_core::CoreError> {
//! let report = Simulator::new(Config::fully_connected_mlp(&[256, 128])?)
//!     .threads(2)
//!     .metrics(true)
//!     .run()?;
//! assert!(report.metrics.is_some());
//! # Ok(())
//! # }
//! ```

use mnsim_obs as obs;
use mnsim_obs::trace;

use crate::config::Config;
use crate::dse::{explore_with, Constraints, DesignSpace, DseResult};
use crate::error::CoreError;
use crate::exec::ExecOptions;
use crate::fault_sim::{simulate_with_faults_with, FaultConfig};
use crate::simulate::{simulate_with, Report};
use crate::validate::{validate_against_circuit_with, ValidationRow};

/// A configured simulation session: one [`Config`], one [`ExecOptions`],
/// and (optionally) a fault campaign, shared by every capability.
///
/// The builder methods take and return `self`, so a session reads as one
/// chain; the struct is `Clone`, so a tuned session can be reused across
/// runs and sweeps.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: Config,
    options: ExecOptions,
    faults: Option<FaultConfig>,
}

impl Simulator {
    /// A session over `config` with default execution options (auto
    /// thread count, no metrics, no trace, no faults).
    pub fn new(config: Config) -> Self {
        Simulator {
            config,
            options: ExecOptions::default(),
            faults: None,
        }
    }

    /// A session parsed from the Table I `key = value` file format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigParse`] (with a did-you-mean suggestion
    /// for misspelled keys) or [`CoreError::Config`] listing every invalid
    /// value.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        Ok(Simulator::new(Config::from_text(text)?))
    }

    /// Sets the worker-thread count (`0` = auto, `1` = serial). Results
    /// are bit-identical for every choice.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Collect an observability snapshot during [`Simulator::run`] and
    /// attach it as [`Report::metrics`]. The facade owns the exclusive
    /// [`obs::session`], so only one metrics-enabled run may execute at a
    /// time per process.
    #[must_use]
    pub fn metrics(mut self, metrics: bool) -> Self {
        self.options.metrics = metrics;
        self
    }

    /// Record a hierarchical trace during [`Simulator::run`] and attach
    /// its summary as [`Report::trace`]. The facade owns the exclusive
    /// [`trace::session`], so only one trace-enabled run may execute at a
    /// time per process.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.options.trace = trace;
        self
    }

    /// Replaces the whole [`ExecOptions`] in one call.
    #[must_use]
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a fault-injection campaign to [`Simulator::run`]; the
    /// Monte-Carlo trial loop uses this session's thread count (the
    /// legacy [`FaultConfig::threads`] field is ignored).
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The session's execution options.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.options
    }

    /// Runs the simulation (with the fault campaign, if one is attached)
    /// and returns the [`Report`], with metrics and/or trace summaries
    /// attached when the corresponding flags are set.
    ///
    /// Numerical report fields are bit-identical for every thread count;
    /// only the optional `metrics` / `trace` attachments (timing and
    /// counter data) vary run to run.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors, and fault-campaign errors
    /// when a campaign is attached.
    pub fn run(&self) -> Result<Report, CoreError> {
        // Sessions open before the run so they observe all of it; metrics
        // snapshot while live, trace consumed by `finish`.
        let metrics_session = self.options.metrics.then(obs::session);
        let trace_session = self.options.trace.then(trace::session);
        let mut report = match &self.faults {
            Some(fault_config) => {
                simulate_with_faults_with(&self.config, fault_config, &self.options)?
            }
            None => simulate_with(&self.config, &self.options)?,
        };
        if let Some(session) = metrics_session {
            report = report.with_metrics(session.snapshot());
        }
        if let Some(session) = trace_session {
            report = report.with_trace(session.finish().summary());
        }
        Ok(report)
    }

    /// Explores `space` around this session's configuration on the
    /// session's worker pool (see [`explore_with`]). Metrics/trace flags
    /// apply to [`Simulator::run`] only — a sweep produces thousands of
    /// reports, none of which owns the session-wide instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDesignSpace`] if no combination passes
    /// the constraints, and propagates evaluation errors.
    pub fn explore(
        &self,
        space: &DesignSpace,
        constraints: &Constraints,
    ) -> Result<DseResult, CoreError> {
        explore_with(&self.config, space, constraints, &self.options)
    }

    /// Validates the behavior models against the circuit baseline on the
    /// session's worker pool (see
    /// [`validate_against_circuit_with`]).
    ///
    /// # Errors
    ///
    /// Propagates circuit construction/solver failures.
    pub fn validate(
        &self,
        matrices: usize,
        inputs_per_matrix: usize,
        seed: u64,
    ) -> Result<Vec<ValidationRow>, CoreError> {
        validate_against_circuit_with(
            &self.config,
            matrices,
            inputs_per_matrix,
            seed,
            &self.options,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::simulate;

    #[test]
    fn facade_matches_legacy_simulate() {
        let config = Config::fully_connected_mlp(&[256, 128]).unwrap();
        let legacy = simulate(&config).unwrap();
        for threads in [1usize, 2, 7] {
            let report = Simulator::new(config.clone()).threads(threads).run().unwrap();
            assert_eq!(legacy, report, "threads={threads}");
        }
    }

    #[test]
    fn facade_runs_fault_campaigns() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let fault_config = FaultConfig {
            trials: 3,
            ..FaultConfig::default()
        };
        let direct =
            simulate_with_faults_with(&config, &fault_config, &ExecOptions::with_threads(2))
                .unwrap();
        let facade = Simulator::new(config)
            .faults(fault_config)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(direct, facade);
        assert!(facade.faults.is_some());
    }

    #[test]
    fn metrics_and_trace_attach() {
        let config = Config::fully_connected_mlp(&[128, 64]).unwrap();
        let report = Simulator::new(config)
            .threads(2)
            .metrics(true)
            .trace(true)
            .run()
            .unwrap();
        let metrics = report.metrics.expect("metrics attached");
        assert!(metrics.counter("core.simulate.runs") >= 1);
        let trace = report.trace.expect("trace attached");
        assert!(trace.events > 0);
        assert!(trace.spans.contains_key("simulate"));
    }

    #[test]
    fn builder_accessors_and_from_text() {
        let sim = Simulator::from_text("Crossbar_Size = 64\n")
            .unwrap()
            .options(ExecOptions::serial());
        assert_eq!(sim.config().crossbar_size, 64);
        assert_eq!(sim.exec_options().threads, 1);
        assert!(Simulator::from_text("Crosbar_Size = 64\n").is_err());
    }
}
