//! The unified `Simulator` session facade.
//!
//! Historically every capability had its own entry point and its own
//! knobs: `simulate` (serial only), a fault campaign with threads on
//! [`FaultConfig`], a DSE traversal with a bare thread argument, and the
//! `--metrics` / `--trace` plumbing of the CLI front ends. [`Simulator`]
//! replaces that with one builder: configure once, then [`Simulator::run`]
//! a clean or faulty simulation, [`Simulator::explore`] a design space, or
//! [`Simulator::validate`] against the circuit baseline — all on the same
//! [`ExecOptions`] worker pool, with metrics and trace sessions owned by
//! the facade. [`Session`] adds the cross-request layer on top: the same
//! calls, answered from a fingerprint-keyed [`ArtifactCache`] when the
//! configuration was already evaluated.
//!
//! Live telemetry composes from the *outside*: when a front end holds an
//! open [`mnsim_obs::live`] session, the fault-campaign and DSE wave
//! loops stream typed progress events (`campaign_started`,
//! `wave_completed` with ETA and items/s, `checkpoint_written`,
//! `campaign_finished`, …) into it — no `Simulator` knob needed, and no
//! cost at all when no session is open. See the `repro` CLI's
//! `--live`/`--progress` flags for the canonical wiring.
//!
//! ```
//! use mnsim_core::{Config, Simulator};
//!
//! # fn main() -> Result<(), mnsim_core::CoreError> {
//! let report = Simulator::new(Config::fully_connected_mlp(&[256, 128])?)
//!     .threads(2)
//!     .metrics(true)
//!     .run()?;
//! assert!(report.metrics.is_some());
//! # Ok(())
//! # }
//! ```

use std::sync::Arc;

use mnsim_obs as obs;
use mnsim_obs::trace;

use crate::cache::{Artifact, ArtifactCache};
use crate::checkpoint::{self, CheckpointPolicy};
use crate::config::Config;
use crate::dse::{explore_with, sweep_fingerprint, Constraints, DesignSpace, DseResult};
use crate::error::CoreError;
use crate::exec::{CancelToken, Deadline, ExecOptions, RunControl};
use crate::fault_sim::{campaign_fingerprint, simulate_with_faults_controlled, FaultConfig};
use crate::simulate::{simulate_with, Report};
use crate::validate::{validate_against_circuit_with, ValidationRow};

/// A configured simulation session: one [`Config`], one [`ExecOptions`],
/// and (optionally) a fault campaign, shared by every capability.
///
/// The builder methods take and return `self`, so a session reads as one
/// chain; the struct is `Clone`, so a tuned session can be reused across
/// runs and sweeps.
#[derive(Debug, Clone)]
pub struct Simulator {
    config: Config,
    options: ExecOptions,
    faults: Option<FaultConfig>,
    deadline: Option<Deadline>,
    checkpoint: Option<CheckpointPolicy>,
}

impl Simulator {
    /// A session over `config` with default execution options (auto
    /// thread count, no metrics, no trace, no faults).
    pub fn new(config: Config) -> Self {
        Simulator {
            config,
            options: ExecOptions::default(),
            faults: None,
            deadline: None,
            checkpoint: None,
        }
    }

    /// A session parsed from the Table I `key = value` file format.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConfigParse`] (with a did-you-mean suggestion
    /// for misspelled keys) or [`CoreError::Config`] listing every invalid
    /// value.
    pub fn from_text(text: &str) -> Result<Self, CoreError> {
        Ok(Simulator::new(Config::from_text(text)?))
    }

    /// Sets the worker-thread count (`0` = auto, `1` = serial). Results
    /// are bit-identical for every choice.
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.options.threads = threads;
        self
    }

    /// Collect an observability snapshot during [`Simulator::run`] and
    /// attach it as [`Report::metrics`]. The facade owns the exclusive
    /// [`obs::session`], so only one metrics-enabled run may execute at a
    /// time per process.
    #[must_use]
    pub fn metrics(mut self, metrics: bool) -> Self {
        self.options.metrics = metrics;
        self
    }

    /// Record a hierarchical trace during [`Simulator::run`] and attach
    /// its summary as [`Report::trace`]. The facade owns the exclusive
    /// [`trace::session`], so only one trace-enabled run may execute at a
    /// time per process.
    #[must_use]
    pub fn trace(mut self, trace: bool) -> Self {
        self.options.trace = trace;
        self
    }

    /// Replaces the whole [`ExecOptions`] in one call.
    #[must_use]
    pub fn options(mut self, options: ExecOptions) -> Self {
        self.options = options;
        self
    }

    /// Attach a fault-injection campaign to [`Simulator::run`]; the
    /// Monte-Carlo trial loop uses this session's thread count.
    #[must_use]
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Bounds every subsequent [`Simulator::run`] /
    /// [`Simulator::run_cancellable`] by `deadline`. Deadlines are
    /// absolute instants: the clock runs from when the deadline value was
    /// created, not from when the run starts.
    #[must_use]
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Bounds the run by a deadline `millis` milliseconds **from now**
    /// (the moment this builder is called) — the `--deadline-ms` CLI
    /// convention.
    #[must_use]
    pub fn deadline_ms(mut self, millis: u64) -> Self {
        self.deadline = Some(Deadline::after_millis(millis));
        self
    }

    /// Attaches a checkpoint policy to the session's fault campaign: the
    /// campaign persists completed trials to the policy's path as it runs
    /// and resumes from that file when it already exists. Order-independent
    /// with [`Simulator::faults`] (the policy overrides one already set on
    /// the attached [`FaultConfig`]); has no effect on clean (fault-less)
    /// runs.
    #[must_use]
    pub fn checkpoint(mut self, policy: CheckpointPolicy) -> Self {
        self.checkpoint = Some(policy);
        self
    }

    /// The session's configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The session's execution options.
    pub fn exec_options(&self) -> &ExecOptions {
        &self.options
    }

    /// Runs the simulation (with the fault campaign, if one is attached)
    /// and returns the [`Report`], with metrics and/or trace summaries
    /// attached when the corresponding flags are set.
    ///
    /// Numerical report fields are bit-identical for every thread count;
    /// only the optional `metrics` / `trace` attachments (timing and
    /// counter data) vary run to run.
    ///
    /// # Errors
    ///
    /// Returns configuration validation errors, and fault-campaign errors
    /// when a campaign is attached.
    pub fn run(&self) -> Result<Report, CoreError> {
        self.run_controlled(&RunControl::default())
    }

    /// [`Simulator::run`] under an explicit campaign control plane: the
    /// fault-campaign trial loop observes `control`'s cancellation token
    /// and deadline at chunk boundaries (a session deadline from
    /// [`Simulator::deadline`] fills in when `control` carries none), and
    /// the session's [`CheckpointPolicy`] is honored. With an open
    /// [`mnsim_obs::live`] session the campaign additionally streams
    /// progress events per wave; an interrupted run still emits its final
    /// `campaign_finished` event before the error returns.
    ///
    /// # Errors
    ///
    /// Everything [`Simulator::run`] returns, plus
    /// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when the
    /// control plane cut the campaign short and [`CoreError::WorkerPanic`]
    /// for a panicking trial.
    pub fn run_controlled(&self, control: &RunControl) -> Result<Report, CoreError> {
        let mut control = control.clone();
        if control.deadline.is_none() {
            control.deadline = self.deadline;
        }
        // Sessions open before the run so they observe all of it; metrics
        // snapshot while live, trace consumed by `finish`.
        let metrics_session = self.options.metrics.then(obs::session);
        let trace_session = self.options.trace.then(trace::session);
        let mut report = match &self.faults {
            Some(fault_config) => {
                let campaign = match &self.checkpoint {
                    Some(policy) => FaultConfig {
                        checkpoint: Some(policy.clone()),
                        ..fault_config.clone()
                    },
                    None => fault_config.clone(),
                };
                simulate_with_faults_controlled(&self.config, &campaign, &self.options, &control)?
            }
            None => simulate_with(&self.config, &self.options)?,
        };
        if let Some(session) = metrics_session {
            report = report.with_metrics(session.snapshot());
        }
        if let Some(session) = trace_session {
            report = report.with_trace(session.finish().summary());
        }
        Ok(report)
    }

    /// Starts the run on a background thread and returns a [`RunHandle`]
    /// with a fresh [`CancelToken`] wired into the campaign: call
    /// [`RunHandle::cancel`] to stop it cooperatively (completed trials
    /// are checkpointed when a policy is set), then [`RunHandle::join`]
    /// for the outcome.
    pub fn run_cancellable(&self) -> RunHandle {
        let token = CancelToken::new();
        let control = RunControl::with_cancel(token.clone());
        let session = self.clone();
        let thread = std::thread::spawn(move || session.run_controlled(&control));
        RunHandle { token, thread }
    }

    /// Explores `space` around this session's configuration on the
    /// session's worker pool (see [`explore_with`]). Metrics/trace flags
    /// apply to [`Simulator::run`] only — a sweep produces thousands of
    /// reports, none of which owns the session-wide instrumentation.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyDesignSpace`] if no combination passes
    /// the constraints, and propagates evaluation errors.
    pub fn explore(
        &self,
        space: &DesignSpace,
        constraints: &Constraints,
    ) -> Result<DseResult, CoreError> {
        explore_with(&self.config, space, constraints, &self.options)
    }

    /// Validates the behavior models against the circuit baseline on the
    /// session's worker pool (see
    /// [`validate_against_circuit_with`]).
    ///
    /// # Errors
    ///
    /// Propagates circuit construction/solver failures.
    pub fn validate(
        &self,
        matrices: usize,
        inputs_per_matrix: usize,
        seed: u64,
    ) -> Result<Vec<ValidationRow>, CoreError> {
        validate_against_circuit_with(
            &self.config,
            matrices,
            inputs_per_matrix,
            seed,
            &self.options,
        )
    }

    /// Wraps this simulator in a [`Session`] with its own fresh
    /// [`ArtifactCache`] (default budget).
    #[must_use]
    pub fn into_session(self) -> Session {
        self.into_session_with(Arc::new(ArtifactCache::new()))
    }

    /// Wraps this simulator in a [`Session`] over a shared
    /// [`ArtifactCache`] — the shape `mnsim-serve` uses, where many
    /// sessions (one per request) share one process-wide cache.
    #[must_use]
    pub fn into_session_with(self, cache: Arc<ArtifactCache>) -> Session {
        Session { sim: self, cache }
    }
}

/// A [`Simulator`] with memory: the same `run`/`explore`/`validate`
/// calls, answered from a fingerprint-keyed [`ArtifactCache`] when this
/// configuration was already evaluated (by this session or any other
/// session sharing the cache).
///
/// Results come back as [`Arc`]s because they may be shared with the
/// cache and with concurrent readers. Cached artifacts are **stripped**
/// of per-run `metrics`/`trace` attachments — those describe one
/// execution, not the configuration, and would otherwise make a cache
/// hit observably different from the run that populated it. Everything
/// else is bit-identical: results are deterministic at any thread count,
/// so a hit is indistinguishable from a re-run.
///
/// Fingerprints cover exactly what determines the result (config, fault
/// campaign parameters, design space, constraints, validation sampling)
/// and exclude what does not (thread count, metrics/trace flags,
/// deadlines, checkpoint policies).
#[derive(Debug, Clone)]
pub struct Session {
    sim: Simulator,
    cache: Arc<ArtifactCache>,
}

impl Session {
    /// The underlying simulator.
    pub fn simulator(&self) -> &Simulator {
        &self.sim
    }

    /// The shared artifact cache.
    pub fn cache(&self) -> &Arc<ArtifactCache> {
        &self.cache
    }

    /// The cache key of [`Session::run`]: the campaign fingerprint when a
    /// fault campaign is attached (same identity the checkpoint layer
    /// uses), otherwise the clean-simulation config fingerprint.
    pub fn run_fingerprint(&self) -> u64 {
        match &self.sim.faults {
            Some(fault_config) => campaign_fingerprint(&self.sim.config, fault_config),
            None => {
                let canonical = format!("simulate|config={:?}", self.sim.config);
                checkpoint::fnv64(canonical.as_bytes())
            }
        }
    }

    /// The cache key of [`Session::explore`] for `space`/`constraints`
    /// (the DSE checkpoint fingerprint).
    pub fn explore_fingerprint(&self, space: &DesignSpace, constraints: &Constraints) -> u64 {
        sweep_fingerprint(&self.sim.config, space, constraints)
    }

    /// The cache key of [`Session::validate`] for the given sampling
    /// parameters.
    pub fn validate_fingerprint(
        &self,
        matrices: usize,
        inputs_per_matrix: usize,
        seed: u64,
    ) -> u64 {
        let canonical = format!(
            "validate|config={:?}|matrices={matrices}|inputs_per_matrix={inputs_per_matrix}|\
             seed={seed:#018x}",
            self.sim.config,
        );
        checkpoint::fnv64(canonical.as_bytes())
    }

    /// [`Simulator::run`] through the cache: a hit returns the stored
    /// report without executing anything; a miss runs, stores the
    /// stripped report, and returns it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::run`]. Errors are never cached —
    /// a failed run leaves the cache untouched.
    pub fn run(&self) -> Result<Arc<Report>, CoreError> {
        let key = self.run_fingerprint();
        if let Some(Artifact::Report(report)) = self.cache.get(key) {
            return Ok(report);
        }
        let mut report = self.sim.run()?;
        report.metrics = None;
        report.trace = None;
        let report = Arc::new(report);
        self.cache.insert(key, Artifact::Report(Arc::clone(&report)));
        Ok(report)
    }

    /// [`Simulator::explore`] through the cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::explore`]; errors are never
    /// cached.
    pub fn explore(
        &self,
        space: &DesignSpace,
        constraints: &Constraints,
    ) -> Result<Arc<DseResult>, CoreError> {
        let key = self.explore_fingerprint(space, constraints);
        if let Some(Artifact::DseFront(result)) = self.cache.get(key) {
            return Ok(result);
        }
        let result = Arc::new(self.sim.explore(space, constraints)?);
        self.cache.insert(key, Artifact::DseFront(Arc::clone(&result)));
        Ok(result)
    }

    /// [`Simulator::validate`] through the cache.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Simulator::validate`]; errors are never
    /// cached.
    pub fn validate(
        &self,
        matrices: usize,
        inputs_per_matrix: usize,
        seed: u64,
    ) -> Result<Arc<Vec<ValidationRow>>, CoreError> {
        let key = self.validate_fingerprint(matrices, inputs_per_matrix, seed);
        if let Some(Artifact::Validation(rows)) = self.cache.get(key) {
            return Ok(rows);
        }
        let rows = Arc::new(self.sim.validate(matrices, inputs_per_matrix, seed)?);
        self.cache.insert(key, Artifact::Validation(Arc::clone(&rows)));
        Ok(rows)
    }
}

/// A cancellable, joinable in-flight run started by
/// [`Simulator::run_cancellable`].
#[derive(Debug)]
pub struct RunHandle {
    token: CancelToken,
    thread: std::thread::JoinHandle<Result<Report, CoreError>>,
}

impl RunHandle {
    /// Requests cooperative cancellation; the campaign stops at the next
    /// chunk boundary (completed trials are checkpointed when a policy is
    /// set) and [`RunHandle::join`] returns [`CoreError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// The run's cancellation token (cloneable; e.g. for a signal
    /// handler).
    pub fn cancel_token(&self) -> CancelToken {
        self.token.clone()
    }

    /// Whether the run has finished (successfully or not); [`RunHandle::join`]
    /// will not block once this is `true`.
    pub fn is_finished(&self) -> bool {
        self.thread.is_finished()
    }

    /// Waits for the run and returns its outcome. A panic on the run
    /// thread outside the panic-isolated trial loop is propagated.
    pub fn join(self) -> Result<Report, CoreError> {
        match self.thread.join() {
            Ok(outcome) => outcome,
            Err(payload) => std::panic::resume_unwind(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault_sim::simulate_with_faults_with;
    use crate::simulate::simulate;

    #[test]
    fn facade_matches_legacy_simulate() {
        let config = Config::fully_connected_mlp(&[256, 128]).unwrap();
        let legacy = simulate(&config).unwrap();
        for threads in [1usize, 2, 7] {
            let report = Simulator::new(config.clone()).threads(threads).run().unwrap();
            assert_eq!(legacy, report, "threads={threads}");
        }
    }

    #[test]
    fn facade_runs_fault_campaigns() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let fault_config = FaultConfig {
            trials: 3,
            ..FaultConfig::default()
        };
        let direct =
            simulate_with_faults_with(&config, &fault_config, &ExecOptions::with_threads(2))
                .unwrap();
        let facade = Simulator::new(config)
            .faults(fault_config)
            .threads(2)
            .run()
            .unwrap();
        assert_eq!(direct, facade);
        assert!(facade.faults.is_some());
    }

    #[test]
    fn metrics_and_trace_attach() {
        let config = Config::fully_connected_mlp(&[128, 64]).unwrap();
        let report = Simulator::new(config)
            .threads(2)
            .metrics(true)
            .trace(true)
            .run()
            .unwrap();
        let metrics = report.metrics.expect("metrics attached");
        assert!(metrics.counter("core.simulate.runs") >= 1);
        let trace = report.trace.expect("trace attached");
        assert!(trace.events > 0);
        assert!(trace.spans.contains_key("simulate"));
    }

    #[test]
    fn run_cancellable_completes_and_matches_run() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let sim = Simulator::new(config).threads(2).faults(FaultConfig {
            trials: 3,
            ..FaultConfig::default()
        });
        let direct = sim.run().unwrap();
        let handle = sim.run_cancellable();
        let background = handle.join().unwrap();
        assert_eq!(direct, background);
    }

    #[test]
    fn cancelled_run_reports_typed_error() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let sim = Simulator::new(config).threads(1).faults(FaultConfig {
            trials: 64,
            ..FaultConfig::default()
        });
        // Budget token: deterministic mid-campaign cancellation.
        let token = CancelToken::after_items(2);
        let control = RunControl::with_cancel(token);
        match sim.run_controlled(&control) {
            Err(CoreError::Cancelled {
                completed,
                total: 64,
                checkpoint: None,
            }) => assert!(completed < 64, "completed={completed}"),
            other => panic!("expected Cancelled, got {other:?}"),
        }
    }

    #[test]
    fn session_deadline_bounds_the_campaign() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let sim = Simulator::new(config)
            .threads(1)
            .deadline(Deadline::at(std::time::Instant::now()))
            .faults(FaultConfig {
                trials: 16,
                ..FaultConfig::default()
            });
        match sim.run() {
            Err(CoreError::DeadlineExceeded { completed: 0, total: 16, .. }) => {}
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }

    #[test]
    fn session_caches_runs_and_shares_across_sessions() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let cache = Arc::new(ArtifactCache::new());
        let session = Simulator::new(config.clone())
            .threads(2)
            .into_session_with(Arc::clone(&cache));
        let first = session.run().unwrap();
        let second = session.run().unwrap();
        assert!(Arc::ptr_eq(&first, &second), "hit returns the cached Arc");
        assert_eq!(cache.stats().hits, 1);

        // A different session over the same cache and config also hits;
        // thread count is excluded from the fingerprint.
        let other = Simulator::new(config)
            .threads(7)
            .into_session_with(Arc::clone(&cache));
        assert_eq!(other.run_fingerprint(), session.run_fingerprint());
        let third = other.run().unwrap();
        assert!(Arc::ptr_eq(&first, &third));
        assert_eq!(cache.stats().hits, 2);
        assert_eq!(cache.stats().insertions, 1);
    }

    #[test]
    fn session_strips_per_run_attachments_before_caching() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let session = Simulator::new(config.clone())
            .threads(1)
            .metrics(true)
            .into_session();
        let cached = session.run().unwrap();
        assert!(cached.metrics.is_none());
        assert!(cached.trace.is_none());
        // The cached body equals a plain run.
        let plain = Simulator::new(config).threads(1).run().unwrap();
        assert_eq!(*cached, plain);
    }

    #[test]
    fn session_fingerprints_separate_capabilities_and_campaigns() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let clean = Simulator::new(config.clone()).into_session();
        let faulty = Simulator::new(config)
            .faults(FaultConfig {
                trials: 3,
                ..FaultConfig::default()
            })
            .into_session();
        assert_ne!(clean.run_fingerprint(), faulty.run_fingerprint());
        assert_ne!(
            clean.validate_fingerprint(2, 2, 1),
            clean.validate_fingerprint(2, 2, 2)
        );
    }

    #[test]
    fn session_caches_fault_campaigns_and_validation() {
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let session = Simulator::new(config)
            .threads(2)
            .faults(FaultConfig {
                trials: 3,
                ..FaultConfig::default()
            })
            .into_session();
        let first = session.run().unwrap();
        assert!(first.faults.is_some());
        let second = session.run().unwrap();
        assert!(Arc::ptr_eq(&first, &second));

        let rows = session.validate(2, 2, 7).unwrap();
        let rows_again = session.validate(2, 2, 7).unwrap();
        assert!(Arc::ptr_eq(&rows, &rows_again));
        assert_eq!(session.cache().stats().hits, 2);
    }

    #[test]
    fn builder_accessors_and_from_text() {
        let sim = Simulator::from_text("Crossbar_Size = 64\n")
            .unwrap()
            .options(ExecOptions::serial());
        assert_eq!(sim.config().crossbar_size, 64);
        assert_eq!(sim.exec_options().threads, 1);
        assert!(Simulator::from_text("Crosbar_Size = 64\n").is_err());
    }
}
