//! Cross-request artifact cache for long-running sessions.
//!
//! A process that evaluates many configurations (the `mnsim-serve`
//! session server, a DSE driver, a notebook-style exploration loop)
//! repeatedly rebuilds the same expensive artifacts: full simulation
//! [`Report`]s, validation tables, DSE fronts, and prepared circuit
//! systems with their cached factorizations. [`ArtifactCache`] keeps
//! them across requests, keyed by the same FNV-1a config fingerprints
//! the checkpoint layer uses (see [`crate::checkpoint::fnv64`]), under
//! a configurable byte budget with strict least-recently-used eviction.
//!
//! Artifacts are handed out as cheap [`Arc`] clones, so eviction can
//! never corrupt a consumer: a job holding an artifact keeps it alive
//! regardless of what the cache decides to drop. Hit/miss/eviction
//! counts are mirrored into the `mnsim-obs` registry under `cache.artifact.*`
//! when a metrics session is active, and are always available locally
//! via [`ArtifactCache::stats`].

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mnsim_obs as obs;

use mnsim_circuit::batch::PreparedSystem;

use crate::dse::DseResult;
use crate::simulate::Report;
use crate::validate::ValidationRow;

static CACHE_HITS: obs::Counter = obs::Counter::new("cache.artifact.hits");
static CACHE_MISSES: obs::Counter = obs::Counter::new("cache.artifact.misses");
static CACHE_INSERTS: obs::Counter = obs::Counter::new("cache.artifact.inserts");
static CACHE_EVICTIONS: obs::Counter = obs::Counter::new("cache.artifact.evictions");
static CACHE_BYTES: obs::Gauge = obs::Gauge::new("cache.artifact.bytes");
static CACHE_ENTRIES: obs::Gauge = obs::Gauge::new("cache.artifact.entries");

/// One cached artifact. Every variant is an [`Arc`] payload, so a cache
/// hit is a pointer clone and an evicted artifact stays valid for
/// whoever already holds it.
#[derive(Debug, Clone)]
pub enum Artifact {
    /// A complete simulation report (metrics/trace stripped — those are
    /// per-run observations, not properties of the configuration).
    Report(Arc<Report>),
    /// A model-vs-circuit validation table.
    Validation(Arc<Vec<ValidationRow>>),
    /// A design-space exploration result (full or partial front).
    DseFront(Arc<DseResult>),
    /// A prepared circuit system (assembled structure + cached
    /// factorization). Shared behind a mutex because solving mutates
    /// warm-start state.
    Prepared(Arc<Mutex<PreparedSystem>>),
    /// An opaque serialized payload (e.g. trained weights in text form),
    /// tagged with a kind label.
    Payload {
        /// What the payload is (`"weights"`, `"report_json"`, …).
        kind: &'static str,
        /// The serialized bytes.
        data: Arc<String>,
    },
}

impl Artifact {
    /// Rough resident size of the artifact in bytes, used for budget
    /// accounting. Estimates err on the generous side; exactness is not
    /// required — the budget is a pressure valve, not an allocator.
    pub fn approx_bytes(&self) -> usize {
        match self {
            Artifact::Report(report) => report_approx_bytes(report),
            Artifact::Validation(rows) => {
                64 + rows.len() * (std::mem::size_of::<ValidationRow>() + 32)
            }
            Artifact::DseFront(result) => {
                64 + result
                    .feasible
                    .iter()
                    .map(|p| 64 + report_approx_bytes(&p.report))
                    .sum::<usize>()
            }
            Artifact::Prepared(system) => match system.lock() {
                Ok(sys) => sys.approx_bytes(),
                Err(poisoned) => poisoned.into_inner().approx_bytes(),
            },
            Artifact::Payload { data, .. } => 64 + data.len(),
        }
    }
}

/// Rough resident size of one [`Report`].
fn report_approx_bytes(report: &Report) -> usize {
    let mut bytes = std::mem::size_of::<Report>();
    bytes += report.layer_accuracy.len() * 64;
    bytes += report.config.network.banks.len() * 128;
    if report.faults.is_some() {
        bytes += 512;
    }
    // Attached metrics/trace are stripped before caching, but account
    // for them if a caller inserts a report that still carries them.
    if let Some(metrics) = &report.metrics {
        bytes += metrics.to_json().len();
    }
    if report.trace.is_some() {
        bytes += 4096;
    }
    bytes
}

/// A point-in-time view of cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Artifacts inserted.
    pub insertions: u64,
    /// Artifacts evicted to honor the byte budget.
    pub evictions: u64,
    /// Current resident estimate in bytes.
    pub bytes: usize,
    /// Current entry count.
    pub entries: usize,
    /// Configured byte budget.
    pub budget: usize,
}

/// One resident entry.
struct Entry {
    artifact: Artifact,
    bytes: usize,
    /// Logical access clock value of the most recent touch; the entry
    /// with the smallest value is the LRU eviction victim.
    last_used: u64,
}

/// State behind the cache mutex.
struct CacheInner {
    entries: HashMap<u64, Entry>,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    insertions: u64,
    evictions: u64,
}

/// A fingerprint-keyed, byte-budgeted, LRU artifact cache shared across
/// requests (and threads — all methods take `&self`).
pub struct ArtifactCache {
    inner: Mutex<CacheInner>,
    budget: usize,
}

impl std::fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ArtifactCache")
            .field("entries", &stats.entries)
            .field("bytes", &stats.bytes)
            .field("budget", &stats.budget)
            .finish()
    }
}

impl ArtifactCache {
    /// Default budget: 256 MiB, comfortably above any single prepared
    /// system the platform builds today.
    pub const DEFAULT_BUDGET: usize = 256 << 20;

    /// Creates a cache with [`ArtifactCache::DEFAULT_BUDGET`].
    pub fn new() -> Self {
        Self::with_budget(Self::DEFAULT_BUDGET)
    }

    /// Creates a cache evicting LRU entries once the resident estimate
    /// exceeds `budget` bytes. A budget of 0 still caches nothing
    /// durable: every insert is immediately evictable, but the returned
    /// [`Arc`]s from `get`-before-evict remain valid.
    pub fn with_budget(budget: usize) -> Self {
        ArtifactCache {
            inner: Mutex::new(CacheInner {
                entries: HashMap::new(),
                bytes: 0,
                clock: 0,
                hits: 0,
                misses: 0,
                insertions: 0,
                evictions: 0,
            }),
            budget,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u64) -> Option<Artifact> {
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.entries.get_mut(&key) {
            Some(entry) => {
                entry.last_used = clock;
                let artifact = entry.artifact.clone();
                inner.hits += 1;
                CACHE_HITS.add(1);
                Some(artifact)
            }
            None => {
                inner.misses += 1;
                CACHE_MISSES.add(1);
                None
            }
        }
    }

    /// Inserts (or replaces) the artifact under `key`, then evicts
    /// least-recently-used entries until the resident estimate is back
    /// under budget. The freshly inserted entry is the most recent, so
    /// it is evicted only if it alone exceeds the whole budget.
    pub fn insert(&self, key: u64, artifact: Artifact) {
        let bytes = artifact.approx_bytes();
        let mut inner = self.lock();
        inner.clock += 1;
        let clock = inner.clock;
        if let Some(old) = inner.entries.insert(
            key,
            Entry {
                artifact,
                bytes,
                last_used: clock,
            },
        ) {
            inner.bytes -= old.bytes;
        }
        inner.bytes += bytes;
        inner.insertions += 1;
        CACHE_INSERTS.add(1);
        while inner.bytes > self.budget {
            let victim = inner
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(evicted) = inner.entries.remove(&victim) {
                inner.bytes -= evicted.bytes;
                inner.evictions += 1;
                CACHE_EVICTIONS.add(1);
            }
        }
        CACHE_BYTES.set(inner.bytes as f64);
        CACHE_ENTRIES.set(inner.entries.len() as f64);
    }

    /// Current effectiveness counters and occupancy.
    pub fn stats(&self) -> CacheStats {
        let inner = self.lock();
        CacheStats {
            hits: inner.hits,
            misses: inner.misses,
            insertions: inner.insertions,
            evictions: inner.evictions,
            bytes: inner.bytes,
            entries: inner.entries.len(),
            budget: self.budget,
        }
    }

    /// Configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        match self.inner.lock() {
            Ok(guard) => guard,
            // The cache holds plain data; a panic mid-update can at
            // worst leave a stale byte estimate, never a dangling
            // artifact. Recover rather than cascade.
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Default for ArtifactCache {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Artifact {
        Artifact::Payload {
            kind: "test",
            data: Arc::new("x".repeat(n)),
        }
    }

    #[test]
    fn hit_miss_and_recency_refresh() {
        let cache = ArtifactCache::with_budget(10_000);
        assert!(cache.get(1).is_none());
        cache.insert(1, payload(100));
        cache.insert(2, payload(100));
        assert!(cache.get(1).is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 2);
        assert_eq!(stats.entries, 2);
    }

    #[test]
    fn lru_evicts_oldest_first_and_get_refreshes() {
        // Each payload ≈ 64 + 400 bytes; budget fits two.
        let cache = ArtifactCache::with_budget(1_000);
        cache.insert(1, payload(400));
        cache.insert(2, payload(400));
        // Touch 1 so 2 becomes the LRU victim.
        assert!(cache.get(1).is_some());
        cache.insert(3, payload(400));
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some(), "recently touched entry kept");
        assert!(cache.get(3).is_some(), "new entry kept");
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn replacement_updates_byte_accounting() {
        let cache = ArtifactCache::with_budget(100_000);
        cache.insert(1, payload(1_000));
        let before = cache.stats().bytes;
        cache.insert(1, payload(10));
        let after = cache.stats().bytes;
        assert!(after < before, "replacing shrinks the estimate");
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn evicted_artifact_stays_valid_for_holders() {
        let cache = ArtifactCache::with_budget(500);
        cache.insert(1, payload(400));
        let held = cache.get(1).expect("present before pressure");
        // Force eviction of key 1.
        cache.insert(2, payload(400));
        assert!(cache.get(1).is_none(), "evicted under pressure");
        match held {
            Artifact::Payload { data, .. } => assert_eq!(data.len(), 400),
            other => panic!("unexpected artifact {other:?}"),
        }
    }

    #[test]
    fn zero_budget_never_retains_but_never_panics() {
        let cache = ArtifactCache::with_budget(0);
        cache.insert(1, payload(10));
        assert!(cache.get(1).is_none());
        assert_eq!(cache.stats().entries, 0);
    }
}
