//! Calibration of the accuracy model against the circuit simulator —
//! the paper's Fig.-5 methodology ("We use M, N, and r as variables to
//! simulate the error of output voltages on SPICE, and fit the relationship
//! according to Equ. (11)").
//!
//! [`measure_circuit_error_rate`] produces the "SPICE scatter points";
//! [`fit_wire_coefficient`] finds the wire coefficient minimizing the
//! squared model-vs-circuit residual and reports the RMSE the paper quotes
//! (< 0.01).

use mnsim_circuit::batch::{BatchOptions, PreparedSystem};
use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::{Resistance, Voltage};

use crate::accuracy::crossbar_error::{AccuracyModel, Case};
use crate::error::CoreError;

/// One circuit-vs-model comparison point (a "scatter point" of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorMeasurement {
    /// Crossbar size (square).
    pub size: usize,
    /// Signed error rate measured by the circuit simulator.
    pub measured: f64,
    /// Signed error rate predicted by the calibrated model.
    pub modeled: f64,
}

/// The result of fitting the model coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct FitResult {
    /// The fitted wire coefficient.
    pub coefficient: f64,
    /// The fitted non-linearity coefficient.
    pub nonlinearity_coefficient: f64,
    /// Root-mean-squared model-vs-circuit residual (paper: < 0.01).
    pub rmse: f64,
    /// The per-size comparison points.
    pub points: Vec<ErrorMeasurement>,
}

impl FitResult {
    /// The calibrated accuracy model these coefficients describe.
    pub fn model(&self, sense_resistance: Resistance) -> AccuracyModel {
        AccuracyModel {
            sense_resistance,
            wire_coefficient: self.coefficient,
            nonlinearity_coefficient: self.nonlinearity_coefficient,
            quadratic_wire: true,
        }
    }
}

/// Solves the worst-case crossbar (all cells at `R_min`, all inputs at the
/// read voltage) with the circuit simulator and returns the signed error
/// rate of the farthest column against the ideal wire-free linear output.
///
/// # Errors
///
/// Propagates circuit construction/solver failures.
pub fn measure_circuit_error_rate(
    size: usize,
    interconnect: InterconnectNode,
    device: &MemristorModel,
    sense_resistance: Resistance,
) -> Result<f64, CoreError> {
    Ok(measure_circuit_error_rates(size, interconnect, device, sense_resistance, &[1.0])?[0])
}

/// Sweeps the worst-case crossbar over several read amplitudes (fractions
/// of `v_read` in `(0, 1]`), returning one signed error rate per amplitude.
///
/// The circuit is assembled and factored once as a
/// [`PreparedSystem`]; every amplitude is a re-driven right-hand side, so
/// the sweep costs one assembly plus one backsolve (or warm-started CG run)
/// per point. `amplitudes = [1.0]` reproduces
/// [`measure_circuit_error_rate`] exactly.
///
/// # Errors
///
/// Rejects non-positive or non-finite amplitudes; propagates circuit
/// construction/solver failures.
pub fn measure_circuit_error_rates(
    size: usize,
    interconnect: InterconnectNode,
    device: &MemristorModel,
    sense_resistance: Resistance,
    amplitudes: &[f64],
) -> Result<Vec<f64>, CoreError> {
    for &amplitude in amplitudes {
        if !(amplitude.is_finite() && amplitude > 0.0) {
            return Err(CoreError::InvalidConfig {
                parameter: "read_amplitude",
                reason: format!("amplitudes must be finite and positive, got {amplitude}"),
            });
        }
    }

    let mut spec = CrossbarSpec::uniform(
        size,
        size,
        device.r_min,
        interconnect.segment_resistance(),
        sense_resistance,
        device.v_read,
    );
    spec.iv = device.iv;
    let xbar = spec.build()?;
    let mut prepared = PreparedSystem::build(xbar.circuit(), BatchOptions::default())?;
    let rs_m = sense_resistance.ohms() * size as f64;

    let mut rates = Vec::with_capacity(amplitudes.len());
    for &amplitude in amplitudes {
        let volts = device.v_read.volts() * amplitude;
        let drive = vec![Voltage::from_volts(volts); size];
        let rhs = xbar.input_rhs(&drive)?;
        let solution = prepared.solve(xbar.circuit(), &rhs)?;
        let v_act = xbar.output_voltages(&solution)[size - 1].volts(); // farthest column

        // Ideal: linear cells, no wires (paper Eq. 9 with R_parallel = R/M).
        let v_idl = volts * rs_m / (device.r_min.ohms() + rs_m);
        rates.push((v_idl - v_act) / v_idl);
    }
    Ok(rates)
}

/// Fits the model's wire coefficient over the given sizes by golden-section
/// search on the summed squared residual.
///
/// # Errors
///
/// Propagates circuit failures; rejects an empty size list.
pub fn fit_wire_coefficient(
    device: &MemristorModel,
    interconnect: InterconnectNode,
    sense_resistance: Resistance,
    sizes: &[usize],
) -> Result<FitResult, CoreError> {
    if sizes.is_empty() {
        return Err(CoreError::InvalidConfig {
            parameter: "fit_sizes",
            reason: "need at least one crossbar size to fit against".into(),
        });
    }

    let mut measured = Vec::with_capacity(sizes.len());
    for &size in sizes {
        measured.push(measure_circuit_error_rate(
            size,
            interconnect,
            device,
            sense_resistance,
        )?);
    }

    let objective = |wire: f64, nonlinearity: f64| -> f64 {
        let model = AccuracyModel {
            sense_resistance,
            wire_coefficient: wire,
            nonlinearity_coefficient: nonlinearity,
            quadratic_wire: true,
        };
        sizes
            .iter()
            .zip(&measured)
            .map(|(&size, &m)| {
                let p = model.signed_error_rate(size, size, interconnect, device, Case::Worst);
                (p - m) * (p - m)
            })
            .sum()
    };

    // Coordinate descent with golden-section line searches (the objective
    // is smooth and near-separable in the two coefficients).
    let mut coefficient = 1.0;
    let mut nonlinearity = 1.0;
    for _ in 0..4 {
        coefficient = golden_section(|w| objective(w, nonlinearity), 0.0, 4.0);
        nonlinearity = golden_section(|n| objective(coefficient, n), 0.0, 4.0);
    }

    let model = AccuracyModel {
        sense_resistance,
        wire_coefficient: coefficient,
        nonlinearity_coefficient: nonlinearity,
        quadratic_wire: true,
    };
    let points: Vec<ErrorMeasurement> = sizes
        .iter()
        .zip(&measured)
        .map(|(&size, &m)| ErrorMeasurement {
            size,
            measured: m,
            modeled: model.signed_error_rate(size, size, interconnect, device, Case::Worst),
        })
        .collect();
    let rmse = (points
        .iter()
        .map(|p| (p.modeled - p.measured) * (p.modeled - p.measured))
        .sum::<f64>()
        / points.len() as f64)
        .sqrt();

    Ok(FitResult {
        coefficient,
        nonlinearity_coefficient: nonlinearity,
        rmse,
        points,
    })
}

/// Golden-section minimization of a unimodal function on `[lo, hi]`.
fn golden_section(f: impl Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> f64 {
    let phi = (5.0f64.sqrt() - 1.0) / 2.0;
    let mut c = hi - phi * (hi - lo);
    let mut d = lo + phi * (hi - lo);
    let (mut fc, mut fd) = (f(c), f(d));
    for _ in 0..80 {
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - phi * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + phi * (hi - lo);
            fd = f(d);
        }
    }
    (lo + hi) / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> MemristorModel {
        MemristorModel::rram_default()
    }

    #[test]
    fn measured_error_grows_with_size() {
        let d = device();
        let rs = Resistance::from_ohms(20.0);
        let e16 = measure_circuit_error_rate(16, InterconnectNode::N28, &d, rs).unwrap();
        let e64 = measure_circuit_error_rate(64, InterconnectNode::N28, &d, rs).unwrap();
        assert!(e64 > e16, "{e64} !> {e16}");
        assert!(e64 > 0.0 && e64 < 1.0);
    }

    #[test]
    fn fit_reaches_paper_rmse_criterion() {
        // The paper's validation: fitted-curve RMSE below 0.01.
        let d = device();
        let rs = Resistance::from_ohms(20.0);
        let fit =
            fit_wire_coefficient(&d, InterconnectNode::N28, rs, &[8, 16, 32, 48, 64]).unwrap();
        assert!(
            fit.rmse < 0.01,
            "RMSE {} exceeds the paper's 0.01 criterion; c = {}",
            fit.rmse,
            fit.coefficient
        );
        assert!(fit.coefficient > 0.0 && fit.coefficient < 4.0);
        assert_eq!(fit.points.len(), 5);
    }

    #[test]
    fn amplitude_sweep_matches_single_point_and_validates() {
        let d = device();
        let rs = Resistance::from_ohms(20.0);
        let rates =
            measure_circuit_error_rates(16, InterconnectNode::N28, &d, rs, &[1.0, 0.75, 0.5])
                .unwrap();
        assert_eq!(rates.len(), 3);
        for &rate in &rates {
            assert!(rate.is_finite() && rate > 0.0 && rate < 1.0, "{rate}");
        }
        // The full-amplitude point of the sweep is the single-point
        // measurement, bit for bit: same prepared system, same arithmetic.
        let single = measure_circuit_error_rate(16, InterconnectNode::N28, &d, rs).unwrap();
        assert_eq!(rates[0], single);
        assert!(
            measure_circuit_error_rates(8, InterconnectNode::N28, &d, rs, &[0.0]).is_err()
        );
        assert!(
            measure_circuit_error_rates(8, InterconnectNode::N28, &d, rs, &[f64::NAN]).is_err()
        );
    }

    #[test]
    fn empty_sizes_rejected() {
        let d = device();
        let rs = Resistance::from_ohms(20.0);
        assert!(fit_wire_coefficient(&d, InterconnectNode::N28, rs, &[]).is_err());
    }
}
