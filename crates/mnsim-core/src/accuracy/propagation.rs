//! Layer-to-layer error propagation (paper §VI.C, Eq. 15).
//!
//! The input of layer `i` already carries the digital error rate
//! `δ_{i−1}` of the previous layer; combined with the current crossbar's
//! analog error `ε_i`, the practical output voltage is bounded by
//! `(1 ± δ_{i−1})(1 ± ε_i)·V_idl`, i.e. the effective deviation fed to the
//! read circuits is `(1 + δ)(1 + ε) − 1`. MNSIM evaluates the whole
//! accelerator layer by layer with this rule.

use crate::accuracy::quantization::{
    avg_digital_deviation, avg_error_rate, max_digital_deviation, max_error_rate,
};

/// Accuracy numbers of one layer after propagation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerAccuracy {
    /// The layer's own crossbar voltage-error rate `ε`.
    pub crossbar_epsilon: f64,
    /// Effective deviation after combining with the incoming error (Eq. 15).
    pub effective_epsilon: f64,
    /// Worst-case digital deviation in levels (Eq. 12).
    pub max_deviation: u32,
    /// Worst-case read error rate (Eq. 13) — this becomes `δ` for the next
    /// layer.
    pub max_error_rate: f64,
    /// Average digital deviation in levels (Eq. 14).
    pub avg_deviation: f64,
    /// Average read error rate.
    pub avg_error_rate: f64,
}

/// Propagates the per-layer crossbar error rates through the network.
///
/// `epsilons[i]` is the analog error rate of layer `i`'s crossbars and `k`
/// the read-circuit quantization levels. Returns one [`LayerAccuracy`] per
/// layer; the last entry's rates describe the accelerator output.
///
/// # Panics
///
/// Panics if `epsilons` is empty, any `ε` is negative, or `k < 2`.
pub fn propagate(epsilons: &[f64], k: u32) -> Vec<LayerAccuracy> {
    assert!(!epsilons.is_empty(), "need at least one layer");
    let mut result = Vec::with_capacity(epsilons.len());
    let mut delta_max = 0.0f64;
    let mut delta_avg = 0.0f64;
    for &eps in epsilons {
        assert!(eps >= 0.0, "error rates must be non-negative");
        // Eq. 15: the worst corner of (1+δ)(1+ε).
        let eff_max = (1.0 + delta_max) * (1.0 + eps) - 1.0;
        let eff_avg = (1.0 + delta_avg) * (1.0 + eps) - 1.0;
        let layer = LayerAccuracy {
            crossbar_epsilon: eps,
            effective_epsilon: eff_max,
            max_deviation: max_digital_deviation(k, eff_max),
            max_error_rate: max_error_rate(k, eff_max),
            avg_deviation: avg_digital_deviation(k, eff_avg),
            avg_error_rate: avg_error_rate(k, eff_avg),
        };
        delta_max = layer.max_error_rate;
        delta_avg = layer.avg_error_rate;
        result.push(layer);
    }
    result
}

/// The final output error rates `(max, avg)` of a multi-layer accelerator.
///
/// # Panics
///
/// Same conditions as [`propagate`].
pub fn output_error_rates(epsilons: &[f64], k: u32) -> (f64, f64) {
    let layers = propagate(epsilons, k);
    layers
        .last()
        .map_or((0.0, 0.0), |last| (last.max_error_rate, last.avg_error_rate))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_matches_direct_model() {
        let layers = propagate(&[0.08], 64);
        assert_eq!(layers.len(), 1);
        assert_eq!(layers[0].max_deviation, max_digital_deviation(64, 0.08));
        assert!((layers[0].effective_epsilon - 0.08).abs() < 1e-12);
    }

    #[test]
    fn errors_accumulate_across_layers() {
        let one = output_error_rates(&[0.05], 64).0;
        let three = output_error_rates(&[0.05, 0.05, 0.05], 64).0;
        assert!(three > one, "{three} !> {one}");
    }

    #[test]
    fn eq15_compounding() {
        // Layer 2 must see (1+δ1)(1+ε2) − 1, strictly more than ε2.
        let layers = propagate(&[0.10, 0.10], 64);
        assert!(layers[1].effective_epsilon > layers[1].crossbar_epsilon);
        let delta1 = layers[0].max_error_rate;
        let expected = (1.0 + delta1) * 1.10 - 1.0;
        assert!((layers[1].effective_epsilon - expected).abs() < 1e-12);
    }

    #[test]
    fn perfect_layers_stay_perfect() {
        let layers = propagate(&[0.0, 0.0, 0.0], 64);
        for l in layers {
            assert_eq!(l.max_deviation, 0);
            assert_eq!(l.max_error_rate, 0.0);
        }
    }

    #[test]
    fn avg_chain_below_max_chain() {
        let layers = propagate(&[0.06, 0.04, 0.08], 256);
        for l in layers {
            assert!(l.avg_error_rate <= l.max_error_rate + 1e-12);
        }
    }

    #[test]
    fn deep_networks_saturate_gracefully() {
        // 16 layers of 5 % — the error must grow monotonically but remain
        // a valid rate.
        let eps = vec![0.05; 16];
        let layers = propagate(&eps, 256);
        let mut prev = 0.0;
        for l in &layers {
            assert!(l.max_error_rate >= prev);
            prev = l.max_error_rate;
        }
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_input_panics() {
        let _ = propagate(&[], 64);
    }
}
