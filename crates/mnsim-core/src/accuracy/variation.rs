//! Device-variation analysis (paper §VI.D, Eq. 16).
//!
//! A memristor's programmed resistance deviates by up to `σ` (0–30 %).
//! The closed-form model brackets the worst case with `(1 ± σ)·R_act`;
//! this module *verifies* that bracket by Monte-Carlo: the circuit solver
//! runs the worst-case crossbar with every cell's state independently
//! perturbed, and the sampled error distribution must fall inside the
//! model's `±σ` envelope (the paper: "the verification result of the
//! variation-considered model is similar to that shown in Fig. 5").

use mnsim_circuit::batch::{prepare_or_reuse, BatchOptions, PreparedSystem};
use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::Resistance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::accuracy::crossbar_error::{AccuracyModel, Case};
use crate::error::CoreError;

/// The Monte-Carlo variation measurement of one crossbar size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationSample {
    /// Crossbar size.
    pub size: usize,
    /// Device variation σ used.
    pub sigma: f64,
    /// Mean signed error rate across the Monte-Carlo runs.
    pub mean_error: f64,
    /// Smallest signed error rate observed.
    pub min_error: f64,
    /// Largest signed error rate observed.
    pub max_error: f64,
    /// Model prediction without variation.
    pub model_nominal: f64,
    /// Model worst-case prediction with variation (Eq. 16, adversarial
    /// sign).
    pub model_with_variation: f64,
}

impl VariationSample {
    /// `true` if every sampled error falls within the model's
    /// `nominal ± (variation swing + slack)` envelope.
    ///
    /// Eq. 16 brackets the cell resistance with `(1 ± σ)`, so variation
    /// can push the output error *either* way around the nominal
    /// prediction by the same swing: favorable draws (cells below
    /// `R_act`) land below nominal just as adversarial draws land above.
    pub fn within_envelope(&self, slack: f64) -> bool {
        let swing = (self.model_with_variation - self.model_nominal).abs();
        let lo = self.model_nominal - swing - slack;
        let hi = self.model_nominal + swing + slack;
        self.min_error >= lo && self.max_error <= hi
    }
}

/// Runs the Monte-Carlo variation experiment for one crossbar size.
///
/// The `model` must already be calibrated (see
/// [`crate::accuracy::fit_wire_coefficient`]); `runs` independent circuits
/// are solved with every cell at `R_min·(1 + U(−σ, σ))`.
///
/// # Errors
///
/// Propagates circuit failures; rejects `σ ∉ (0, 0.3]` or zero runs.
#[allow(clippy::too_many_arguments)]
pub fn measure_variation(
    model: &AccuracyModel,
    device: &MemristorModel,
    interconnect: InterconnectNode,
    sense_resistance: Resistance,
    size: usize,
    sigma: f64,
    runs: usize,
    seed: u64,
) -> Result<VariationSample, CoreError> {
    if !(0.0 < sigma && sigma <= 0.3) {
        return Err(CoreError::InvalidConfig {
            parameter: "sigma",
            reason: format!("variation must be in (0, 0.3], got {sigma}"),
        });
    }
    if runs == 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "runs",
            reason: "need at least one Monte-Carlo run".into(),
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let rs_m = sense_resistance.ohms() * size as f64;
    let v_idl = device.v_read.volts() * rs_m / (device.r_min.ohms() + rs_m);

    let mut mean = 0.0;
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    // Every run resamples the cell resistances, which invalidates any cached
    // factorization: `prepare_or_reuse` notices the changed conductance
    // fingerprint and rebuilds rather than ever solving a stale system.
    let mut prepared_slot: Option<PreparedSystem> = None;
    let batch_options = BatchOptions::default();
    for _ in 0..runs {
        let states: Vec<Resistance> = (0..size * size)
            .map(|_| {
                let factor = 1.0 + rng.gen_range(-sigma..=sigma);
                Resistance::from_ohms(device.r_min.ohms() * factor)
            })
            .collect();
        let spec = CrossbarSpec {
            rows: size,
            cols: size,
            wire_resistance: interconnect.segment_resistance(),
            sense_resistance,
            states,
            iv: device.iv,
            inputs: vec![device.v_read; size],
            faults: None,
        };
        let built = spec.build()?;
        let prepared = prepare_or_reuse(&mut prepared_slot, built.circuit(), &batch_options)?;
        let rhs = built.input_rhs(&vec![device.v_read; size])?;
        let solution = prepared.solve(built.circuit(), &rhs)?;
        let v_act = built.output_voltages(&solution)[size - 1].volts();
        let error = (v_idl - v_act) / v_idl;
        mean += error;
        min = min.min(error);
        max = max.max(error);
    }
    mean /= runs as f64;

    let model_nominal = model.signed_error_rate(size, size, interconnect, device, Case::Worst);
    let mut varied_device = device.clone();
    varied_device.sigma = sigma;
    let model_with_variation =
        model.signed_error_rate(size, size, interconnect, &varied_device, Case::Worst);

    Ok(VariationSample {
        size,
        sigma,
        mean_error: mean,
        min_error: min,
        max_error: max,
        model_nominal,
        model_with_variation,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::accuracy::fit::fit_wire_coefficient;

    #[test]
    fn monte_carlo_mean_tracks_nominal_model() {
        let device = MemristorModel::rram_default();
        let rs = Resistance::from_ohms(10.0);
        let node = InterconnectNode::N28;
        let fit = fit_wire_coefficient(&device, node, rs, &[8, 16, 32]).unwrap();
        let model = fit.model(rs);
        let sample =
            measure_variation(&model, &device, node, rs, 16, 0.15, 12, 77).unwrap();
        // Variation averages out: the Monte-Carlo mean sits near the
        // nominal prediction.
        assert!(
            (sample.mean_error - sample.model_nominal).abs() < 0.05,
            "mean {} vs nominal {}",
            sample.mean_error,
            sample.model_nominal
        );
        // The spread is non-degenerate but bracketed by the model envelope
        // with a small slack.
        assert!(sample.max_error > sample.min_error);
        assert!(
            sample.within_envelope(0.05),
            "samples [{}, {}] outside envelope [{}, {}]",
            sample.min_error,
            sample.max_error,
            sample.model_nominal.min(sample.model_with_variation),
            sample.model_nominal.max(sample.model_with_variation),
        );
    }

    #[test]
    fn rejects_invalid_parameters() {
        let device = MemristorModel::rram_default();
        let rs = Resistance::from_ohms(10.0);
        let model = AccuracyModel::new(rs);
        assert!(
            measure_variation(&model, &device, InterconnectNode::N28, rs, 8, 0.0, 4, 1)
                .is_err()
        );
        assert!(
            measure_variation(&model, &device, InterconnectNode::N28, rs, 8, 0.5, 4, 1)
                .is_err()
        );
        assert!(
            measure_variation(&model, &device, InterconnectNode::N28, rs, 8, 0.1, 0, 1)
                .is_err()
        );
    }

    #[test]
    fn larger_sigma_widens_model_envelope() {
        let device = MemristorModel::rram_default();
        let rs = Resistance::from_ohms(10.0);
        let model = AccuracyModel::new(rs);
        let envelope = |sigma: f64| {
            let mut d = device.clone();
            d.sigma = sigma;
            let varied =
                model.signed_error_rate(32, 32, InterconnectNode::N28, &d, Case::Worst);
            let nominal =
                model.signed_error_rate(32, 32, InterconnectNode::N28, &device, Case::Worst);
            (varied - nominal).abs()
        };
        assert!(envelope(0.3) > envelope(0.1));
    }
}
