//! The behavior-level computing-accuracy model (paper §VI).
//!
//! * [`crossbar_error`] — analog output-voltage error of one crossbar
//!   (Eqs. 9–11, device variation Eq. 16),
//! * [`quantization`] — voltage error → digital level deviation
//!   (Eqs. 12–14),
//! * [`propagation`] — layer-to-layer accumulation (Eq. 15),
//! * [`fit`] — calibration against the circuit simulator (the Fig.-5
//!   fitting flow, RMSE < 0.01 criterion),
//! * [`variation`] — Monte-Carlo verification of the device-variation
//!   envelope (§VI.D).

pub mod crossbar_error;
pub mod fit;
pub mod propagation;
pub mod quantization;
pub mod variation;

pub use crossbar_error::{AccuracyModel, Case};
pub use fit::{fit_wire_coefficient, measure_circuit_error_rate, ErrorMeasurement, FitResult};
pub use propagation::{output_error_rates, propagate, LayerAccuracy};
pub use quantization::{
    avg_digital_deviation, avg_error_rate, max_digital_deviation, max_error_rate,
};
pub use variation::{measure_variation, VariationSample};
