//! Read-deviation model: from analog voltage error to digital levels
//! (paper §VI.C, Eqs. 12–14).
//!
//! The read circuits quantize the analog matrix-vector result into `k`
//! levels with boundaries at `{0.5, 1.5, …, k−1.5} × V_interval`. A
//! relative voltage deviation `ε` moves a value across boundaries; the
//! model gives the worst-case and average digital deviations.

/// Maximum digital deviation in levels (paper Eq. 12):
/// `⌊(k − 1.5)·ε + 0.5⌋`, clamped to `k − 1` (a read value can never be
/// more than full scale away from the ideal).
///
/// The paper's example: `k = 64`, `ε = 10 %` → 6 levels (63 read as 57).
///
/// # Panics
///
/// Panics if `k < 2` or `ε` is negative.
pub fn max_digital_deviation(k: u32, epsilon: f64) -> u32 {
    assert!(k >= 2, "need at least two quantization levels");
    assert!(epsilon >= 0.0, "error rate must be non-negative");
    let raw = ((k as f64 - 1.5) * epsilon + 0.5).floor();
    (raw.min(f64::from(k - 1))) as u32
}

/// Maximum read error rate (paper Eq. 13):
/// `MaxDigitalDeviation / (k − 1)`.
///
/// # Panics
///
/// Same conditions as [`max_digital_deviation`].
pub fn max_error_rate(k: u32, epsilon: f64) -> f64 {
    f64::from(max_digital_deviation(k, epsilon)) / f64::from(k - 1)
}

/// Average digital deviation in levels (paper Eq. 14):
/// `(Σ_{i=0}^{k−1} ⌊i·ε + 0.5⌋) / k`.
///
/// # Panics
///
/// Same conditions as [`max_digital_deviation`].
pub fn avg_digital_deviation(k: u32, epsilon: f64) -> f64 {
    assert!(k >= 2, "need at least two quantization levels");
    assert!(epsilon >= 0.0, "error rate must be non-negative");
    let cap = f64::from(k - 1);
    let sum: f64 = (0..k)
        .map(|i| (f64::from(i) * epsilon + 0.5).floor().min(cap))
        .sum();
    sum / f64::from(k)
}

/// Average read error rate: `AvgDigitalDeviation / (k − 1)`.
///
/// # Panics
///
/// Same conditions as [`max_digital_deviation`].
pub fn avg_error_rate(k: u32, epsilon: f64) -> f64 {
    avg_digital_deviation(k, epsilon) / f64::from(k - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // "when k equals 64 and ε equals 10%, the MaxDigitalDeviation
        //  equals 6, which means the maximum value 63 can be wrongly read
        //  as 57" — paper §VI.C.
        assert_eq!(max_digital_deviation(64, 0.10), 6);
        assert!((max_error_rate(64, 0.10) - 6.0 / 63.0).abs() < 1e-12);
    }

    #[test]
    fn zero_epsilon_rounds_to_half_level() {
        // ⌊0 + 0.5⌋ = 0: a perfect signal never crosses a boundary.
        assert_eq!(max_digital_deviation(64, 0.0), 0);
        assert_eq!(max_error_rate(64, 0.0), 0.0);
        assert!((avg_digital_deviation(64, 0.0) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn deviation_monotone_in_epsilon() {
        let mut prev = 0;
        for step in 0..40 {
            let eps = step as f64 * 0.01;
            let d = max_digital_deviation(64, eps);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn average_below_max() {
        for eps in [0.01, 0.05, 0.1, 0.2] {
            for k in [16u32, 64, 256] {
                assert!(
                    avg_digital_deviation(k, eps) <= f64::from(max_digital_deviation(k, eps)),
                    "k={k}, ε={eps}"
                );
                assert!(avg_error_rate(k, eps) <= max_error_rate(k, eps) + 1e-12);
            }
        }
    }

    #[test]
    fn avg_deviation_closed_form_sanity() {
        // For ε = 1 every level deviates by ⌊i + 0.5⌋ = i, so the mean is
        // (k−1)/2.
        let k = 64;
        assert!((avg_digital_deviation(k, 1.0) - 31.5).abs() < 1e-12);
    }

    #[test]
    fn more_levels_mean_more_absolute_deviation() {
        // Fixed ε, growing k: the absolute level deviation grows...
        assert!(max_digital_deviation(256, 0.05) > max_digital_deviation(16, 0.05));
        // ...but the *relative* error rate stays ≈ ε.
        let e = max_error_rate(256, 0.05);
        assert!((e - 0.05).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn k_must_be_at_least_two() {
        let _ = max_digital_deviation(1, 0.1);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn epsilon_must_be_non_negative() {
        let _ = max_digital_deviation(64, -0.1);
    }
}
