//! The analog computing-error model of a memristor crossbar
//! (paper §VI.A–C, Eqs. 9–11, and §VI.D Eq. 16 for device variation).
//!
//! Three approximations turn the Kirchhoff system into a closed form:
//!
//! 1. **Decoupled non-linearity** (§VI.A): solve the linear operating point
//!    first (`R_idl`), then evaluate the cell's chord resistance `R_act` at
//!    the resulting bias.
//! 2. **Resistance-only wires** (§VI.B): the crossbar becomes memristors +
//!    wire segments `r` + sensing resistors `R_s`.
//! 3. **Worst/average case** (§VI.C): all cells at `R_min` (worst) or at
//!    the harmonic-mean resistance (average); the worst column is the one
//!    farthest from the drivers.
//!
//! **Wire-term refinement.** The paper's Eq. (10) lumps the wire effect as
//! `(M+N)·r` and then *fits* the resulting curve to SPICE (Fig. 5). Our
//! circuit substrate shows the error accumulating quadratically (each
//! word-line segment carries the currents of all downstream cells), so the
//! default wire term is `r·(M² + N²)/2` — the Elmore-style accumulation —
//! scaled by a fit coefficient exactly as the paper scales its linear term.
//! [`AccuracyModel::wire_coefficient`] is that coefficient;
//! [`crate::accuracy::fit`] reproduces the paper's fitting flow against the
//! circuit simulator.

use mnsim_tech::interconnect::InterconnectNode;
use mnsim_tech::memristor::MemristorModel;
use mnsim_tech::units::{Resistance, Voltage};

use crate::config::Config;

/// Worst-case vs average-case estimation (paper §VI.C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Case {
    /// All cells at `R_min`, farthest column, adversarial variation sign.
    Worst,
    /// Cells at the harmonic-mean resistance, middle column.
    Average,
}

/// The closed-form crossbar accuracy model.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyModel {
    /// Column sensing resistance `R_s`.
    pub sense_resistance: Resistance,
    /// Fit coefficient scaling the wire term (the paper's Fig.-5 fit).
    pub wire_coefficient: f64,
    /// Fit coefficient scaling the non-linear resistance shift
    /// `R_act − R_idl` (compensates the single-operating-point
    /// approximation: cells along a real column sit at different biases).
    pub nonlinearity_coefficient: f64,
    /// Use the quadratic (Elmore-accumulation) wire term instead of the
    /// paper's linear `(M+N)·r` form.
    pub quadratic_wire: bool,
}

impl AccuracyModel {
    /// The reference model: quadratic wire term, unit coefficients.
    pub fn new(sense_resistance: Resistance) -> Self {
        AccuracyModel {
            sense_resistance,
            wire_coefficient: 1.0,
            nonlinearity_coefficient: 1.0,
            quadratic_wire: true,
        }
    }

    /// The paper's literal linear form (Eq. 10), for comparison/ablation.
    pub fn paper_linear(sense_resistance: Resistance) -> Self {
        AccuracyModel {
            sense_resistance,
            wire_coefficient: 1.0,
            nonlinearity_coefficient: 1.0,
            quadratic_wire: false,
        }
    }

    /// Builds the platform's reference model from a configuration.
    ///
    /// The reference model uses the paper's linear wire term (Eq. 10) —
    /// the equation the published trade-off studies are computed with. The
    /// circuit-calibrated quadratic variant ([`AccuracyModel::new`] +
    /// [`crate::accuracy::fit`]) is available for quantitative matching of
    /// full circuit solutions.
    pub fn from_config(config: &Config) -> Self {
        AccuracyModel::paper_linear(config.sense_resistance)
    }

    /// Effective wire resistance added to the evaluated column's path.
    fn wire_term(&self, rows: usize, cols: usize, segment: Resistance, case: Case) -> f64 {
        let (m, n) = (rows as f64, cols as f64);
        let geometric = if self.quadratic_wire {
            (m * m + n * n) / 2.0
        } else {
            m + n
        };
        let column_position = match case {
            Case::Worst => 1.0,   // farthest column
            Case::Average => 0.5, // middle column
        };
        self.wire_coefficient * segment.ohms() * geometric * column_position
    }

    /// Signed output-voltage error rate `(V_idl − V_act) / V_idl` of an
    /// `rows × cols` crossbar with wire-segment resistance from
    /// `interconnect` (paper Eq. 11 with the refinements above).
    ///
    /// Positive values mean the output is *lower* than ideal (wire loss);
    /// negative values mean it is *higher* (non-linear extra conduction).
    pub fn signed_error_rate(
        &self,
        rows: usize,
        cols: usize,
        interconnect: InterconnectNode,
        device: &MemristorModel,
        case: Case,
    ) -> f64 {
        let r_state = match case {
            Case::Worst => device.r_min,
            Case::Average => device.harmonic_mean_resistance(),
        };
        let rs_m = self.sense_resistance.ohms() * rows as f64;
        let r_idl = r_state.ohms();

        // Ideal operating point (linear cells, no wires): Eq. 9.
        let v_in = device.v_read;
        let v_out_idl = v_in.volts() * rs_m / (r_idl + rs_m);

        // Cell bias at the operating point, then the chord resistance
        // (§VI.A second step).
        let bias = Voltage::from_volts(v_in.volts() - v_out_idl);
        let r_act_nominal = device.iv.chord_resistance(r_state, bias).ohms();

        let wire = self.wire_term(rows, cols, interconnect.segment_resistance(), case);

        let epsilon = |r_act: f64| -> f64 {
            // ε = (R_act + W − R_idl) / (R_act + W + Rs·M)   [Eq. 11 / V_idl]
            // with the non-linear shift scaled by its fit coefficient.
            let r_eff = r_idl + self.nonlinearity_coefficient * (r_act - r_idl);
            (r_eff + wire - r_idl) / (r_eff + wire + rs_m)
        };

        if device.sigma > 0.0 && case == Case::Worst {
            // Eq. 16: the adversarial variation sign.
            let plus = epsilon(r_act_nominal * (1.0 + device.sigma));
            let minus = epsilon(r_act_nominal * (1.0 - device.sigma));
            if plus.abs() >= minus.abs() {
                plus
            } else {
                minus
            }
        } else {
            epsilon(r_act_nominal)
        }
    }

    /// Magnitude of the output-voltage error rate (the `ε` fed into the
    /// read-deviation model, Eqs. 12–14).
    pub fn error_rate(
        &self,
        rows: usize,
        cols: usize,
        interconnect: InterconnectNode,
        device: &MemristorModel,
        case: Case,
    ) -> f64 {
        self.signed_error_rate(rows, cols, interconnect, device, case)
            .abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> AccuracyModel {
        AccuracyModel::new(Resistance::from_ohms(20.0))
    }

    fn device() -> MemristorModel {
        MemristorModel::rram_default()
    }

    #[test]
    fn error_rate_in_unit_interval() {
        let m = model();
        let d = device();
        for size in [8, 16, 32, 64, 128, 256] {
            for case in [Case::Worst, Case::Average] {
                let e = m.error_rate(size, size, InterconnectNode::N28, &d, case);
                assert!((0.0..1.0).contains(&e), "size {size}: ε = {e}");
            }
        }
    }

    #[test]
    fn worst_case_bounds_average_case() {
        let m = model();
        let d = device();
        for size in [32, 64, 128, 256] {
            let worst = m.error_rate(size, size, InterconnectNode::N28, &d, Case::Worst);
            let avg = m.error_rate(size, size, InterconnectNode::N28, &d, Case::Average);
            assert!(worst >= avg, "size {size}: worst {worst} < avg {avg}");
        }
    }

    #[test]
    fn smaller_wires_are_worse() {
        // The Fig.-5 trend: smaller interconnect nodes → higher error.
        let m = model();
        let d = device();
        let coarse = m.error_rate(128, 128, InterconnectNode::N90, &d, Case::Worst);
        let fine = m.error_rate(128, 128, InterconnectNode::N18, &d, Case::Worst);
        assert!(fine > coarse);
    }

    #[test]
    fn error_grows_with_size_in_wire_dominated_regime() {
        let m = model();
        let d = device();
        let e64 = m.error_rate(64, 64, InterconnectNode::N28, &d, Case::Worst);
        let e256 = m.error_rate(256, 256, InterconnectNode::N28, &d, Case::Worst);
        assert!(e256 > e64);
    }

    #[test]
    fn nonlinearity_gives_negative_error_for_tiny_arrays() {
        // With negligible wire, the sinh cell conducts extra → output above
        // ideal → negative signed error.
        let m = model();
        let mut d = device();
        d.iv = mnsim_tech::memristor::IvModel::Sinh { alpha: 3.0 };
        let signed = m.signed_error_rate(4, 4, InterconnectNode::N90, &d, Case::Worst);
        assert!(signed < 0.0, "got {signed}");
    }

    #[test]
    fn linear_cells_have_zero_error_without_wires() {
        let m = AccuracyModel {
            sense_resistance: Resistance::from_ohms(20.0),
            wire_coefficient: 0.0, // disable wires entirely
            nonlinearity_coefficient: 1.0,
            quadratic_wire: true,
        };
        let mut d = device();
        d.iv = mnsim_tech::memristor::IvModel::Linear;
        let e = m.error_rate(128, 128, InterconnectNode::N28, &d, Case::Worst);
        assert!(e.abs() < 1e-12);
    }

    #[test]
    fn variation_worsens_worst_case() {
        let m = model();
        let mut d = device();
        let base = m.error_rate(128, 128, InterconnectNode::N28, &d, Case::Worst);
        d.sigma = 0.3;
        let varied = m.error_rate(128, 128, InterconnectNode::N28, &d, Case::Worst);
        assert!(varied >= base);
    }

    #[test]
    fn quadratic_wire_exceeds_linear_form_at_scale() {
        let quad = model();
        let lin = AccuracyModel::paper_linear(Resistance::from_ohms(20.0));
        let d = device();
        let eq = quad.error_rate(256, 256, InterconnectNode::N28, &d, Case::Worst);
        let el = lin.error_rate(256, 256, InterconnectNode::N28, &d, Case::Worst);
        assert!(eq > el);
    }

    #[test]
    fn wire_coefficient_scales_error_monotonically() {
        let d = device();
        let mut m = model();
        m.wire_coefficient = 0.5;
        let half = m.error_rate(128, 128, InterconnectNode::N28, &d, Case::Worst);
        m.wire_coefficient = 2.0;
        let double = m.error_rate(128, 128, InterconnectNode::N28, &d, Case::Worst);
        assert!(double > half);
    }
}
