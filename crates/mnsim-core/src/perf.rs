//! The common performance record every module model produces.
//!
//! MNSIM is a bottom-up simulator: the performance of a higher-level module
//! is the aggregation of its children (paper §IV.A). [`ModulePerf`] is the
//! unit of that aggregation — area, worst-case latency, dynamic energy per
//! operation, and leakage power.

use std::iter::Sum;
use std::ops::Add;

use mnsim_tech::units::{Area, Energy, Power, Time};

/// Area / latency / energy / leakage of one module (or aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ModulePerf {
    /// Layout area.
    pub area: Area,
    /// Worst-case latency contribution on the critical path.
    pub latency: Time,
    /// Dynamic energy consumed per operation of the module.
    pub dynamic_energy: Energy,
    /// Static (leakage) power.
    pub leakage: Power,
}

impl ModulePerf {
    /// The all-zero record.
    pub const ZERO: ModulePerf = ModulePerf {
        area: Area::ZERO,
        latency: Time::ZERO,
        dynamic_energy: Energy::ZERO,
        leakage: Power::ZERO,
    };

    /// Creates a record from its four components.
    pub fn new(area: Area, latency: Time, dynamic_energy: Energy, leakage: Power) -> Self {
        ModulePerf {
            area,
            latency,
            dynamic_energy,
            leakage,
        }
    }

    /// `count` copies of this module operating **in parallel**: area,
    /// energy and leakage scale; latency is unchanged.
    pub fn replicate_parallel(&self, count: usize) -> ModulePerf {
        ModulePerf {
            area: self.area * count as f64,
            latency: self.latency,
            dynamic_energy: self.dynamic_energy * count as f64,
            leakage: self.leakage * count as f64,
        }
    }

    /// The module operated `count` times **sequentially**: latency and
    /// energy scale; area and leakage are unchanged.
    pub fn repeat_sequential(&self, count: usize) -> ModulePerf {
        ModulePerf {
            area: self.area,
            latency: self.latency * count as f64,
            dynamic_energy: self.dynamic_energy * count as f64,
            leakage: self.leakage,
        }
    }

    /// Aggregate of two modules on the same critical path (areas, energies,
    /// leakages and latencies all add).
    pub fn chain(&self, other: &ModulePerf) -> ModulePerf {
        ModulePerf {
            area: self.area + other.area,
            latency: self.latency + other.latency,
            dynamic_energy: self.dynamic_energy + other.dynamic_energy,
            leakage: self.leakage + other.leakage,
        }
    }

    /// Aggregate of two modules operating side by side (areas, energies and
    /// leakages add; latency is the worst of the two).
    pub fn merge_parallel(&self, other: &ModulePerf) -> ModulePerf {
        ModulePerf {
            area: self.area + other.area,
            latency: self.latency.max(other.latency),
            dynamic_energy: self.dynamic_energy + other.dynamic_energy,
            leakage: self.leakage + other.leakage,
        }
    }

    /// Canonical-order [`Self::chain`] over a sequence: modules on one
    /// critical path, folded left to right.
    ///
    /// Aggregations that may be computed on the
    /// [`crate::exec`] worker pool must reduce in a canonical order for
    /// the result to be bit-identical at every thread count; this helper
    /// (and its [`Self::merge_parallel_all`] sibling) pins that order to
    /// the iteration order of the input.
    pub fn chain_all<'a, I: IntoIterator<Item = &'a ModulePerf>>(perfs: I) -> ModulePerf {
        perfs
            .into_iter()
            .fold(ModulePerf::ZERO, |acc, p| acc.chain(p))
    }

    /// Canonical-order [`Self::merge_parallel`] over a sequence: modules
    /// side by side, folded left to right (see [`Self::chain_all`] for why
    /// the order is part of the contract).
    pub fn merge_parallel_all<'a, I: IntoIterator<Item = &'a ModulePerf>>(perfs: I) -> ModulePerf {
        perfs
            .into_iter()
            .fold(ModulePerf::ZERO, |acc, p| acc.merge_parallel(p))
    }

    /// Average power over one operation: `dynamic_energy / latency +
    /// leakage`. Returns just the leakage if the latency is zero.
    pub fn average_power(&self) -> Power {
        if self.latency.seconds() > 0.0 {
            self.dynamic_energy / self.latency + self.leakage
        } else {
            self.leakage
        }
    }
}

impl Add for ModulePerf {
    type Output = ModulePerf;
    /// `+` chains two modules on the same critical path (see [`Self::chain`]).
    fn add(self, rhs: ModulePerf) -> ModulePerf {
        self.chain(&rhs)
    }
}

impl Sum for ModulePerf {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(ModulePerf::ZERO, |acc, p| acc.chain(&p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_tech::units::{Area, Energy, Power, Time};

    fn sample() -> ModulePerf {
        ModulePerf::new(
            Area::from_square_micrometers(100.0),
            Time::from_nanoseconds(10.0),
            Energy::from_picojoules(5.0),
            Power::from_microwatts(1.0),
        )
    }

    #[test]
    fn replicate_parallel_keeps_latency() {
        let p = sample().replicate_parallel(4);
        assert_eq!(p.area.square_micrometers(), 400.0);
        assert_eq!(p.latency.nanoseconds(), 10.0);
        assert_eq!(p.dynamic_energy.picojoules(), 20.0);
        assert_eq!(p.leakage.microwatts(), 4.0);
    }

    #[test]
    fn repeat_sequential_keeps_area() {
        let p = sample().repeat_sequential(3);
        assert_eq!(p.area.square_micrometers(), 100.0);
        assert!((p.latency.nanoseconds() - 30.0).abs() < 1e-9);
        assert!((p.dynamic_energy.picojoules() - 15.0).abs() < 1e-9);
        assert_eq!(p.leakage.microwatts(), 1.0);
    }

    #[test]
    fn chain_adds_latency_merge_takes_max() {
        let a = sample();
        let mut b = sample();
        b.latency = Time::from_nanoseconds(25.0);
        let chained = a.chain(&b);
        assert_eq!(chained.latency.nanoseconds(), 35.0);
        assert_eq!(chained.area.square_micrometers(), 200.0);
        let merged = a.merge_parallel(&b);
        assert_eq!(merged.latency.nanoseconds(), 25.0);
        assert_eq!(merged.dynamic_energy.picojoules(), 10.0);
    }

    #[test]
    fn sum_and_add_agree() {
        let total: ModulePerf = vec![sample(), sample(), sample()].into_iter().sum();
        let manual = sample() + sample() + sample();
        assert_eq!(total, manual);
        assert!((total.latency.nanoseconds() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn canonical_folds_match_pairwise_operators() {
        let a = sample();
        let mut b = sample();
        b.latency = Time::from_nanoseconds(25.0);
        let c = sample();
        let seq = [a, b, c];
        assert_eq!(
            ModulePerf::chain_all(&seq),
            a.chain(&b).chain(&c),
            "chain_all folds left to right"
        );
        assert_eq!(
            ModulePerf::merge_parallel_all(&seq),
            ModulePerf::ZERO.merge_parallel(&a).merge_parallel(&b).merge_parallel(&c),
            "merge_parallel_all folds left to right"
        );
        assert_eq!(ModulePerf::chain_all([]), ModulePerf::ZERO);
        assert_eq!(ModulePerf::merge_parallel_all([]), ModulePerf::ZERO);
    }

    #[test]
    fn average_power() {
        let p = sample();
        // 5 pJ / 10 ns = 0.5 mW, + 1 µW leakage
        assert!((p.average_power().milliwatts() - 0.501).abs() < 1e-9);
        let idle = ModulePerf {
            latency: Time::ZERO,
            ..sample()
        };
        assert_eq!(idle.average_power().microwatts(), 1.0);
    }
}
