//! Shared parallel execution engine for the simulation pipeline.
//!
//! Every threaded traversal in the platform — bank evaluation inside
//! [`crate::simulate::simulate_with`], the fault-injection Monte-Carlo
//! loop, design-space exploration, the model-vs-circuit validation
//! harness — runs on the same scoped-thread worker pool with the same
//! determinism contract:
//!
//! * **Work-stealing chunk queue.** Items are handed out in chunks from a
//!   single atomic cursor, so a slow item (a 1024² bank next to a 4²
//!   bank) never idles the other workers the way static chunking does.
//! * **Deterministic reduction.** Every worker tags results with the item
//!   index; the pool sorts by index before returning, so callers reduce
//!   in canonical order and aggregates are **bit-identical** to the
//!   serial loop for every thread count.
//! * **Earliest-index errors.** When items can fail, the error returned
//!   is the one belonging to the earliest item in traversal order — the
//!   exact error a serial loop reports — regardless of which thread hit
//!   it first. Parallel runs still evaluate every item (coverage is
//!   never silently dropped by a failure elsewhere).
//! * **Trace affinity.** Workers pin deterministic trace lanes (one
//!   block reserved per pool via [`trace::reserve_lanes`]) and open
//!   per-chunk [`trace::Level::Chunk`] spans parented on the caller's
//!   innermost span, so cross-thread work stays attributed to the run
//!   that spawned it — the same contract the fault-trial lanes pioneered.
//! * **Pool effectiveness metrics.** With a metrics session open the pool
//!   records per-worker busy/idle self-time (`exec.worker.busy` /
//!   `exec.worker.idle`), the queue depth after each chunk claim
//!   (`exec.queue.depth`), and a per-pool chunk-imbalance gauge
//!   (`exec.chunk_imbalance`, `(max − min) / mean` of per-worker item
//!   counts). These are timing telemetry — useful for judging the chunk
//!   queue, never part of the determinism contract.
//!
//! With one thread (or one item) the pool degenerates to the plain serial
//! loop on the calling thread: no spawn, no chunk spans, no queue.
//!
//! The **controlled** entry points ([`run_indices`],
//! [`try_map_n_controlled`], [`try_map_slice_controlled`]) add the
//! campaign control plane on top of the same engine: a cooperative
//! [`CancelToken`] and per-run [`Deadline`] checked at chunk boundaries,
//! and per-item panic isolation that surfaces one panicking worker as a
//! typed [`ExecError::WorkerPanic`] while keeping every sibling result.
//! The returned [`MapReport`] says exactly which items completed — the
//! substrate the checkpoint/resume layer
//! ([`crate::checkpoint`]) builds on.
//!
//! [`ExecOptions`] is the one knob the public entry points share; see
//! [`crate::simulator::Simulator`] for the session-style front end.

use std::any::Any;
use std::convert::Infallible;
use std::fmt;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use mnsim_obs as obs;
use mnsim_obs::trace;

static EXEC_CANCELLED: obs::Counter = obs::Counter::new("exec.cancelled");
static EXEC_DEADLINE_EXCEEDED: obs::Counter = obs::Counter::new("exec.deadline_exceeded");
static EXEC_WORKER_PANICS: obs::Counter = obs::Counter::new("exec.worker_panics");
/// Per-worker self-time spent evaluating chunk items.
static EXEC_WORKER_BUSY: obs::Span = obs::Span::new("exec.worker.busy");
/// Per-worker self-time between finishing one chunk and claiming the
/// next (queue/cursor contention; excludes the post-queue drain).
static EXEC_WORKER_IDLE: obs::Span = obs::Span::new("exec.worker.idle");
/// Items left in the queue after the most recent chunk claim.
static EXEC_QUEUE_DEPTH: obs::Gauge = obs::Gauge::new("exec.queue.depth");
/// `(max − min) / mean` of per-worker item counts for the most recent
/// parallel pool — 0.0 is a perfectly balanced run.
static EXEC_CHUNK_IMBALANCE: obs::Gauge = obs::Gauge::new("exec.chunk_imbalance");

/// Chunks handed out per worker on average; >1 lets the queue rebalance
/// around slow items, while keeping per-chunk overhead negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Execution options shared by every public entry point
/// ([`crate::simulate::simulate_with`],
/// [`crate::fault_sim::simulate_with_faults_with`],
/// [`crate::dse::explore_with`],
/// [`crate::validate::validate_against_circuit_with`], and the
/// [`crate::simulator::Simulator`] facade).
///
/// One struct replaces the historical per-subsystem knobs (the removed
/// `FaultConfig::threads` field, the removed `explore_parallel` thread
/// argument, and the `--metrics` / `--trace` CLI plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// Worker threads: `0` uses the machine's available parallelism, `1`
    /// forces the serial path. Results are bit-identical either way.
    pub threads: usize,
    /// Collect an observability snapshot and attach it to the report
    /// (honored by [`crate::simulator::Simulator`], which owns the
    /// exclusive metrics session).
    pub metrics: bool,
    /// Record a hierarchical trace and attach its summary to the report
    /// (honored by [`crate::simulator::Simulator`], which owns the
    /// exclusive trace session).
    pub trace: bool,
}

impl Default for ExecOptions {
    /// Auto thread count, no metrics, no trace.
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            metrics: false,
            trace: false,
        }
    }
}

impl ExecOptions {
    /// Single-threaded execution, no metrics, no trace — the exact
    /// behavior of the historical serial entry points.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            ..ExecOptions::default()
        }
    }

    /// A fixed worker-thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// The concrete worker count: `threads`, with `0` resolved to the
    /// machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Resolves the `0 = auto` convention against the machine.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// A cooperative cancellation token shared between a campaign driver and
/// the worker pool executing it.
///
/// Cancellation is **cooperative and chunk-granular**: workers check the
/// token at chunk boundaries (and the serial path before every item), so
/// a cancelled run stops promptly but never mid-item — every item either
/// ran to completion or did not run at all, which is what makes
/// checkpoint/resume bit-identical.
///
/// Tokens are cheap to clone; clones share the same flag.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Remaining item budget for [`CancelToken::after_items`];
    /// `usize::MAX` means "no budget" (only explicit [`CancelToken::cancel`]).
    budget: AtomicUsize,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner {
            cancelled: AtomicBool::new(false),
            budget: AtomicUsize::new(usize::MAX),
        }
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        CancelToken::default()
    }

    /// A token that cancels itself once `items` work items have completed
    /// under it — a deterministic way to interrupt a run mid-flight
    /// (used heavily by the resume-equivalence tests). The cut is
    /// chunk-granular: a parallel run may complete a few more items than
    /// `items` before the workers observe the trip.
    pub fn after_items(items: usize) -> Self {
        let token = CancelToken::new();
        token.inner.budget.store(items, Ordering::Relaxed);
        if items == 0 {
            token.inner.cancelled.store(true, Ordering::Relaxed);
        }
        token
    }

    /// Requests cancellation. Idempotent; takes effect at the next
    /// chunk boundary of any run observing this token.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested (or the item budget of
    /// [`CancelToken::after_items`] is exhausted).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Relaxed)
    }

    /// Deducts `items` completed work items from the budget, tripping the
    /// token when the budget reaches zero. No-op for budget-less tokens.
    fn note_completed(&self, items: usize) {
        if items == 0 {
            return;
        }
        let updated = self.inner.budget.fetch_update(
            Ordering::Relaxed,
            Ordering::Relaxed,
            |budget| {
                if budget == usize::MAX {
                    None // unlimited: leave untouched
                } else {
                    Some(budget.saturating_sub(items))
                }
            },
        );
        if let Ok(previous) = updated {
            if previous <= items {
                self.inner.cancelled.store(true, Ordering::Relaxed);
            }
        }
    }
}

/// A wall-clock deadline for a run; checked at the same chunk boundaries
/// as [`CancelToken`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `duration` from now.
    pub fn after(duration: Duration) -> Self {
        Deadline {
            at: Instant::now() + duration,
        }
    }

    /// A deadline `millis` milliseconds from now (the CLI convention:
    /// `--deadline-ms`).
    pub fn after_millis(millis: u64) -> Self {
        Deadline::after(Duration::from_millis(millis))
    }

    /// A deadline at an absolute instant.
    pub fn at(instant: Instant) -> Self {
        Deadline { at: instant }
    }

    /// Whether the deadline has passed.
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time left before the deadline (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }
}

/// Why a run stopped before evaluating every item.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interrupt {
    /// A [`CancelToken`] tripped.
    Cancelled,
    /// A [`Deadline`] expired.
    DeadlineExceeded,
}

/// The per-run control plane: an optional cancellation token and an
/// optional deadline, threaded through the controlled execution entry
/// points ([`run_indices`], [`try_map_n_controlled`],
/// [`try_map_slice_controlled`]).
///
/// The default control (no token, no deadline) never interrupts — a
/// controlled run under it behaves exactly like the legacy open-loop run.
#[derive(Debug, Clone, Default)]
pub struct RunControl {
    /// Cooperative cancellation, if the caller wants to be able to stop
    /// the run.
    pub cancel: Option<CancelToken>,
    /// Wall-clock budget, if the run must finish by a certain time.
    pub deadline: Option<Deadline>,
}

impl RunControl {
    /// A control plane that never interrupts.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// A control plane observing `token`.
    pub fn with_cancel(token: CancelToken) -> Self {
        RunControl {
            cancel: Some(token),
            deadline: None,
        }
    }

    /// A control plane bounded by `deadline`.
    pub fn with_deadline(deadline: Deadline) -> Self {
        RunControl {
            cancel: None,
            deadline: Some(deadline),
        }
    }

    /// Adds (or replaces) the cancellation token.
    pub fn cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// Adds (or replaces) the deadline.
    pub fn deadline(mut self, deadline: Deadline) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Checks both signals: cancellation wins over the deadline when both
    /// have fired (the caller asked first).
    pub fn interrupted(&self) -> Option<Interrupt> {
        if self.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
            return Some(Interrupt::Cancelled);
        }
        if self.deadline.as_ref().is_some_and(Deadline::expired) {
            return Some(Interrupt::DeadlineExceeded);
        }
        None
    }
}

/// A typed failure from a controlled run. `E` is the caller's item error
/// type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError<E> {
    /// The earliest failing item's own error — the exact error a serial
    /// loop would have reported.
    Item {
        /// The item index (in the caller's index space) that failed.
        index: usize,
        /// The item's error.
        error: E,
    },
    /// A worker closure panicked on one item. The other items' results
    /// were collected intact; only this item is lost.
    WorkerPanic {
        /// The item index whose closure panicked.
        index: usize,
        /// The panic payload, stringified (`&str` / `String` payloads are
        /// preserved verbatim).
        payload: String,
    },
    /// The run was cancelled before evaluating every item.
    Cancelled {
        /// Items that ran to completion before the cut.
        completed: usize,
        /// Items requested.
        total: usize,
    },
    /// The run's deadline expired before evaluating every item.
    DeadlineExceeded {
        /// Items that ran to completion before the cut.
        completed: usize,
        /// Items requested.
        total: usize,
    },
}

impl<E: fmt::Display> fmt::Display for ExecError<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::Item { index, error } => write!(f, "item {index}: {error}"),
            ExecError::WorkerPanic { index, payload } => {
                write!(f, "worker panicked on item {index}: {payload}")
            }
            ExecError::Cancelled { completed, total } => {
                write!(f, "run cancelled after {completed}/{total} items")
            }
            ExecError::DeadlineExceeded { completed, total } => {
                write!(f, "deadline exceeded after {completed}/{total} items")
            }
        }
    }
}

impl<E: fmt::Display + fmt::Debug> std::error::Error for ExecError<E> {}

/// The full outcome of a controlled run: per-item results, the earliest
/// failure (if any), and whether the run was interrupted.
///
/// Unlike [`try_map_n`], nothing is discarded: a panic or error on one
/// item leaves the sibling results in [`MapReport::results`], and an
/// interrupted run reports exactly which items completed — the substrate
/// checkpoint/resume builds on.
#[derive(Debug)]
pub struct MapReport<R, E> {
    /// One slot per requested index, in request order: `Some` iff that
    /// item ran to successful completion.
    pub results: Vec<Option<R>>,
    /// The earliest-index item failure or worker panic, if any.
    pub error: Option<ExecError<E>>,
    /// Why the run stopped early, if it did. Only set when at least one
    /// requested item did **not** complete: a cancellation that lands
    /// after the last item is not an interruption.
    pub interrupt: Option<Interrupt>,
    /// Number of `Some` entries in [`MapReport::results`].
    pub completed: usize,
    /// Number of requested items.
    pub total: usize,
}

impl<R, E> MapReport<R, E> {
    /// Collapses the report into the classic `Result`: item errors and
    /// panics win over interrupts (both report the earliest failure a
    /// serial loop would have hit); an interrupt with no failure maps to
    /// [`ExecError::Cancelled`] / [`ExecError::DeadlineExceeded`]; a
    /// clean, complete run yields the results in index order.
    pub fn into_result(self) -> Result<Vec<R>, ExecError<E>> {
        if let Some(error) = self.error {
            return Err(error);
        }
        match self.interrupt {
            Some(Interrupt::Cancelled) => Err(ExecError::Cancelled {
                completed: self.completed,
                total: self.total,
            }),
            Some(Interrupt::DeadlineExceeded) => Err(ExecError::DeadlineExceeded {
                completed: self.completed,
                total: self.total,
            }),
            None => Ok(self
                .results
                .into_iter()
                .map(|slot| slot.expect("complete un-failed run has every result"))
                .collect()),
        }
    }
}

/// How a single item finished inside the controlled engine.
enum ItemOutcome<R, E> {
    Ok(R),
    Err(E),
    Panic(String),
}

/// Renders a caught panic payload for [`ExecError::WorkerPanic`].
fn panic_payload_string(payload: Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(index)` for every index in `indices` under `control`, with the
/// same chunk queue, deterministic reduction, and trace affinity as
/// [`try_map_n`] — plus cancellation, deadline enforcement, and per-item
/// panic isolation.
///
/// `indices` is the caller's index space (e.g. the trials still missing
/// from a checkpoint); results align positionally with it. The earliest
/// failure is judged by position in `indices`, so pass indices in
/// ascending order to preserve the serial-loop error contract.
///
/// Control signals are checked before every chunk claim (every item on
/// the serial path); a tripped signal stops further claims but never
/// abandons an item mid-evaluation. Panics in `f` are caught per item and
/// surfaced as [`ExecError::WorkerPanic`] while sibling results are kept.
pub fn run_indices<R, E, F>(
    indices: &[usize],
    threads: usize,
    control: &RunControl,
    f: F,
) -> MapReport<R, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let total = indices.len();
    let threads = resolve_threads(threads).min(total.max(1));
    let mut results: Vec<Option<R>> = (0..total).map(|_| None).collect();
    let mut failure: Option<(usize, ExecError<E>)> = None;

    if threads <= 1 {
        // Serial path: per-item control checks, stop at the first failure
        // exactly like the legacy serial loop.
        for (position, &index) in indices.iter().enumerate() {
            if control.interrupted().is_some() {
                break;
            }
            match catch_unwind(AssertUnwindSafe(|| f(index))) {
                Ok(Ok(result)) => {
                    results[position] = Some(result);
                    if let Some(token) = &control.cancel {
                        token.note_completed(1);
                    }
                }
                Ok(Err(error)) => {
                    failure = Some((position, ExecError::Item { index, error }));
                    break;
                }
                Err(payload) => {
                    failure = Some((
                        position,
                        ExecError::WorkerPanic {
                            index,
                            payload: panic_payload_string(payload),
                        },
                    ));
                    break;
                }
            }
        }
    } else {
        let parent = trace::current_span();
        let lane_base = trace::reserve_lanes(threads as u64);
        let chunk = total.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
        let cursor = AtomicUsize::new(0);
        let collected: Mutex<Vec<(usize, ItemOutcome<R, E>)>> =
            Mutex::new(Vec::with_capacity(total));
        // Pool-effectiveness metrics (busy/idle self-time, queue depth,
        // chunk imbalance) cost `Instant::now` calls per chunk, so they
        // are gated on the metrics session being open at pool start.
        let instrument = obs::enabled();
        let worker_items: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();

        let f_ref = &f;
        let cursor_ref = &cursor;
        let collected_ref = &collected;
        let worker_items_ref = &worker_items;
        std::thread::scope(|scope| {
            for (worker, items_done) in worker_items_ref.iter().enumerate() {
                scope.spawn(move || {
                    trace::pin_lane(lane_base + worker as u64);
                    let mut local: Vec<(usize, ItemOutcome<R, E>)> = Vec::new();
                    let mut idle_since = instrument.then(Instant::now);
                    loop {
                        if control.interrupted().is_some() {
                            break;
                        }
                        let start = cursor_ref.fetch_add(chunk, Ordering::Relaxed);
                        if start >= total {
                            break;
                        }
                        let end = (start + chunk).min(total);
                        let busy_since = if instrument {
                            if let Some(since) = idle_since.take() {
                                EXEC_WORKER_IDLE.record_seconds(since.elapsed().as_secs_f64());
                            }
                            EXEC_QUEUE_DEPTH.set(total.saturating_sub(end) as f64);
                            Some(Instant::now())
                        } else {
                            None
                        };
                        let _chunk_span = trace::span_under(
                            "exec.chunk",
                            trace::Level::Chunk,
                            (start / chunk) as i64,
                            parent,
                        );
                        let mut chunk_completed = 0usize;
                        for (position, &index) in
                            indices.iter().enumerate().take(end).skip(start)
                        {
                            match catch_unwind(AssertUnwindSafe(|| f_ref(index))) {
                                Ok(Ok(result)) => {
                                    chunk_completed += 1;
                                    local.push((position, ItemOutcome::Ok(result)));
                                }
                                Ok(Err(error)) => {
                                    local.push((position, ItemOutcome::Err(error)));
                                }
                                Err(payload) => {
                                    local.push((
                                        position,
                                        ItemOutcome::Panic(panic_payload_string(payload)),
                                    ));
                                }
                            }
                        }
                        if let Some(token) = &control.cancel {
                            token.note_completed(chunk_completed);
                        }
                        if let Some(since) = busy_since {
                            EXEC_WORKER_BUSY.record_seconds(since.elapsed().as_secs_f64());
                            items_done.fetch_add(end - start, Ordering::Relaxed);
                            idle_since = Some(Instant::now());
                        }
                    }
                    collected_ref
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .extend(local);
                });
            }
        });

        if instrument {
            let counts: Vec<usize> = worker_items
                .iter()
                .map(|items| items.load(Ordering::Relaxed))
                .collect();
            let max = counts.iter().copied().max().unwrap_or(0);
            let min = counts.iter().copied().min().unwrap_or(0);
            let mean = counts.iter().sum::<usize>() as f64 / counts.len().max(1) as f64;
            let imbalance = if mean > 0.0 {
                (max - min) as f64 / mean
            } else {
                0.0
            };
            EXEC_CHUNK_IMBALANCE.set(imbalance);
        }

        let collected = collected
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner);
        for (position, outcome) in collected {
            match outcome {
                ItemOutcome::Ok(result) => results[position] = Some(result),
                ItemOutcome::Err(error) => {
                    let candidate = ExecError::Item {
                        index: indices[position],
                        error,
                    };
                    if failure.as_ref().is_none_or(|(at, _)| position < *at) {
                        failure = Some((position, candidate));
                    }
                }
                ItemOutcome::Panic(payload) => {
                    let candidate = ExecError::WorkerPanic {
                        index: indices[position],
                        payload,
                    };
                    if failure.as_ref().is_none_or(|(at, _)| position < *at) {
                        failure = Some((position, candidate));
                    }
                }
            }
        }
    }

    let completed = results.iter().filter(|slot| slot.is_some()).count();
    let error = failure.map(|(_, error)| error);
    if matches!(error, Some(ExecError::WorkerPanic { .. })) {
        EXEC_WORKER_PANICS.inc();
        trace::instant("exec.worker_panic", trace::Level::Run, completed as f64);
    }
    // An interrupt only counts if it actually cut work short: a token
    // that trips after the final item leaves the run complete.
    let interrupt = match control.interrupted() {
        Some(kind) if completed < total && error.is_none() => {
            match kind {
                Interrupt::Cancelled => {
                    EXEC_CANCELLED.inc();
                    trace::instant("exec.cancelled", trace::Level::Run, completed as f64);
                }
                Interrupt::DeadlineExceeded => {
                    EXEC_DEADLINE_EXCEEDED.inc();
                    trace::instant(
                        "exec.deadline_exceeded",
                        trace::Level::Run,
                        completed as f64,
                    );
                }
            }
            Some(kind)
        }
        _ => None,
    };

    MapReport {
        results,
        error,
        interrupt,
        completed,
        total,
    }
}

/// Controlled [`try_map_n`]: runs `f(index)` for `0..n` under `control`
/// and returns the results in index order, or the earliest typed failure.
///
/// # Errors
///
/// [`ExecError::Item`] for the earliest failing index,
/// [`ExecError::WorkerPanic`] if a closure panicked, and
/// [`ExecError::Cancelled`] / [`ExecError::DeadlineExceeded`] when the
/// control plane cut the run short.
pub fn try_map_n_controlled<R, E, F>(
    n: usize,
    threads: usize,
    control: &RunControl,
    f: F,
) -> Result<Vec<R>, ExecError<E>>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let indices: Vec<usize> = (0..n).collect();
    run_indices(&indices, threads, control, f).into_result()
}

/// Controlled [`try_map_slice`]: runs `f(index, &items[index])` over a
/// slice under `control`. See [`try_map_n_controlled`].
///
/// # Errors
///
/// Same contract as [`try_map_n_controlled`].
pub fn try_map_slice_controlled<T, R, E, F>(
    items: &[T],
    threads: usize,
    control: &RunControl,
    f: F,
) -> Result<Vec<R>, ExecError<E>>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_map_n_controlled(items.len(), threads, control, |index| {
        f(index, &items[index])
    })
}

/// Runs `f(index)` for every index in `0..n` and returns the results in
/// index order, using up to `threads` workers (`0` = auto).
///
/// This is the engine primitive: a scoped worker pool pulling chunks off
/// an atomic cursor, collecting `(index, result)` pairs, and reducing in
/// index order. With `threads <= 1` or `n <= 1` it is exactly the serial
/// `(0..n).map(f).collect()`.
///
/// # Errors
///
/// Returns the error of the **earliest** failing index, matching what a
/// serial loop would report. The parallel path evaluates every index even
/// after a failure; the serial path stops at the first error (the
/// returned error is identical either way).
pub fn try_map_n<R, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let parent = trace::current_span();
    let lane_base = trace::reserve_lanes(threads as u64);
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(n));

    let f_ref = &f;
    let cursor_ref = &cursor;
    let collected_ref = &collected;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            scope.spawn(move || {
                trace::pin_lane(lane_base + worker as u64);
                let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                loop {
                    let start = cursor_ref.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let _chunk_span = trace::span_under(
                        "exec.chunk",
                        trace::Level::Chunk,
                        (start / chunk) as i64,
                        parent,
                    );
                    for index in start..end {
                        local.push((index, f_ref(index)));
                    }
                }
                collected_ref
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });

    let mut collected = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    collected.sort_by_key(|(index, _)| *index);
    // A sorted fold: the first Err encountered belongs to the earliest
    // failing index, exactly as the serial traversal reports it.
    collected.into_iter().map(|(_, result)| result).collect()
}

/// Infallible [`try_map_n`]: runs `f(index)` for `0..n` and returns the
/// results in index order.
pub fn map_n<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_map_n::<R, Infallible, _>(n, threads, |index| Ok(f(index))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Runs `f(index, &items[index])` over a slice and returns the results in
/// item order. See [`try_map_n`] for the determinism contract.
///
/// # Errors
///
/// Returns the error of the earliest failing item.
pub fn try_map_slice<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_map_n(items.len(), threads, |index| f(index, &items[index]))
}

/// Infallible [`try_map_slice`].
pub fn map_slice<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_n(items.len(), threads, |index| f(index, &items[index]))
}

/// Splits `0..n` into at most `shards` contiguous, near-equal,
/// **deterministic** ranges (empty ranges are never produced).
///
/// The chunk queue of [`try_map_n`] assigns items to workers dynamically,
/// which is fine for pure per-item work but wrong for stateful sweeps: a
/// warm-started CG chain must see a *reproducible* neighbor sequence.
/// Shard boundaries from this function depend only on `(n, shards)`, so a
/// sharded stateful sweep is deterministic for a fixed shard count.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let d = ExecOptions::default();
        assert_eq!(d.threads, 0);
        assert!(!d.metrics && !d.trace);
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(7).threads, 7);
        assert!(ExecOptions::serial().resolved_threads() == 1);
        assert!(ExecOptions::default().resolved_threads() >= 1);
    }

    #[test]
    fn map_n_is_in_order_for_every_thread_count() {
        let expected: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(map_n(103, threads, |i| i * i), expected, "threads={threads}");
        }
        assert_eq!(map_n(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_n(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_slice_passes_items_and_indices() {
        let items = ["a", "bb", "ccc", "dddd", "eeeee"];
        let out = map_slice(&items, 3, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn earliest_error_wins_for_every_thread_count() {
        // Items 5 and 11 fail; every thread count must report item 5.
        for threads in [1, 2, 7, 64] {
            let err = try_map_n::<usize, String, _>(16, threads, |i| {
                if i == 5 || i == 11 {
                    Err(format!("item {i} failed"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "item 5 failed", "threads={threads}");
        }
    }

    #[test]
    fn parallel_run_evaluates_every_item_despite_errors() {
        use std::sync::atomic::AtomicUsize;
        let evaluated = AtomicUsize::new(0);
        let result = try_map_n::<(), &str, _>(40, 4, |i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("first item fails")
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
        assert_eq!(evaluated.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for shards in [1usize, 2, 3, 7, 64] {
                let ranges = shard_ranges(n, shards);
                let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
                assert!(ranges.iter().all(|r| !r.is_empty()), "n={n} shards={shards}");
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(Range::len).max(),
                    ranges.iter().map(Range::len).min(),
                ) {
                    assert!(max - min <= 1, "n={n} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn worker_panic_is_isolated_and_siblings_survive() {
        for threads in [1, 2, 7] {
            let report = run_indices::<usize, &str, _>(
                &(0..24).collect::<Vec<_>>(),
                threads,
                &RunControl::new(),
                |i| {
                    if i == 9 {
                        panic!("trial 9 exploded");
                    }
                    Ok(i * 2)
                },
            );
            match &report.error {
                Some(ExecError::WorkerPanic { index, payload }) => {
                    assert_eq!(*index, 9, "threads={threads}");
                    assert_eq!(payload, "trial 9 exploded", "threads={threads}");
                }
                other => panic!("expected WorkerPanic, got {other:?} (threads={threads})"),
            }
            if threads > 1 {
                // Parallel runs keep evaluating: every sibling result is
                // present despite the panic.
                assert_eq!(report.completed, 23, "threads={threads}");
                for (i, slot) in report.results.iter().enumerate() {
                    if i == 9 {
                        assert!(slot.is_none());
                    } else {
                        assert_eq!(*slot, Some(i * 2), "threads={threads}");
                    }
                }
            } else {
                // Serial stops at the failure, exactly like a plain loop.
                assert_eq!(report.completed, 9);
            }
            assert!(report.interrupt.is_none());
        }
    }

    #[test]
    fn budget_token_cancels_mid_run_and_reports_completed() {
        for threads in [1, 2, 7] {
            let token = CancelToken::after_items(5);
            let control = RunControl::with_cancel(token.clone());
            let report =
                run_indices::<usize, Infallible, _>(&(0..64).collect::<Vec<_>>(), threads, &control, Ok);
            assert!(token.is_cancelled(), "threads={threads}");
            assert_eq!(report.interrupt, Some(Interrupt::Cancelled), "threads={threads}");
            assert!(report.completed >= 5, "threads={threads}");
            assert!(report.completed < 64, "threads={threads}");
            // Everything that completed is reported.
            assert_eq!(
                report.results.iter().filter(|s| s.is_some()).count(),
                report.completed
            );
            match report.into_result() {
                Err(ExecError::Cancelled { completed, total: 64 }) if completed < 64 => {}
                other => panic!("expected Cancelled, got {other:?}"),
            }
        }
    }

    #[test]
    fn cancellation_after_last_item_is_not_an_interrupt() {
        let token = CancelToken::after_items(8);
        let control = RunControl::with_cancel(token.clone());
        let report =
            run_indices::<usize, Infallible, _>(&(0..8).collect::<Vec<_>>(), 1, &control, Ok);
        assert!(token.is_cancelled());
        assert!(report.interrupt.is_none());
        assert_eq!(report.completed, 8);
        assert_eq!(report.into_result().unwrap().len(), 8);
    }

    #[test]
    fn expired_deadline_stops_the_run_before_work() {
        for threads in [1, 4] {
            let control = RunControl::with_deadline(Deadline::after_millis(0));
            std::thread::sleep(Duration::from_millis(2));
            let evaluated = AtomicUsize::new(0);
            let report = run_indices::<usize, Infallible, _>(
                &(0..32).collect::<Vec<_>>(),
                threads,
                &control,
                |i| {
                    evaluated.fetch_add(1, Ordering::Relaxed);
                    Ok(i)
                },
            );
            assert_eq!(report.interrupt, Some(Interrupt::DeadlineExceeded));
            assert_eq!(report.completed, 0, "threads={threads}");
            assert_eq!(evaluated.load(Ordering::Relaxed), 0, "threads={threads}");
            match report.into_result() {
                Err(ExecError::DeadlineExceeded { completed: 0, total: 32 }) => {}
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
    }

    #[test]
    fn controlled_map_matches_legacy_map_without_control() {
        let legacy: Vec<usize> = map_n(103, 7, |i| i * 3 + 1);
        let controlled =
            try_map_n_controlled::<usize, Infallible, _>(103, 7, &RunControl::new(), |i| {
                Ok(i * 3 + 1)
            })
            .unwrap();
        assert_eq!(legacy, controlled);
    }

    #[test]
    fn controlled_earliest_error_wins() {
        for threads in [1, 2, 7] {
            let err = try_map_n_controlled::<usize, String, _>(
                16,
                threads,
                &RunControl::new(),
                |i| {
                    if i == 5 || i == 11 {
                        Err(format!("item {i} failed"))
                    } else {
                        Ok(i)
                    }
                },
            )
            .unwrap_err();
            assert_eq!(
                err,
                ExecError::Item {
                    index: 5,
                    error: "item 5 failed".to_string()
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn controlled_slice_passes_items() {
        let items = ["a", "bb", "ccc"];
        let out = try_map_slice_controlled::<_, _, Infallible, _>(
            &items,
            2,
            &RunControl::new(),
            |i, s| Ok((i, s.len())),
        )
        .unwrap();
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn deadline_remaining_and_expiry() {
        let deadline = Deadline::after(Duration::from_secs(3600));
        assert!(!deadline.expired());
        assert!(deadline.remaining() > Duration::from_secs(3500));
        let past = Deadline::at(Instant::now());
        assert!(past.expired());
        assert_eq!(past.remaining(), Duration::ZERO);
    }

    #[test]
    fn thread_count_does_not_change_float_reductions() {
        // The canonical-order reduction makes even non-associative float
        // folds bit-identical across thread counts.
        let serial: f64 = map_n(1000, 1, |i| (i as f64).sqrt() * 0.1)
            .iter()
            .sum();
        for threads in [2, 7, 64] {
            let parallel: f64 = map_n(1000, threads, |i| (i as f64).sqrt() * 0.1)
                .iter()
                .sum();
            assert_eq!(serial.to_bits(), parallel.to_bits(), "threads={threads}");
        }
    }
}
