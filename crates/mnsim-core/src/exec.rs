//! Shared parallel execution engine for the simulation pipeline.
//!
//! Every threaded traversal in the platform — bank evaluation inside
//! [`crate::simulate::simulate_with`], the fault-injection Monte-Carlo
//! loop, design-space exploration, the model-vs-circuit validation
//! harness — runs on the same scoped-thread worker pool with the same
//! determinism contract:
//!
//! * **Work-stealing chunk queue.** Items are handed out in chunks from a
//!   single atomic cursor, so a slow item (a 1024² bank next to a 4²
//!   bank) never idles the other workers the way static chunking does.
//! * **Deterministic reduction.** Every worker tags results with the item
//!   index; the pool sorts by index before returning, so callers reduce
//!   in canonical order and aggregates are **bit-identical** to the
//!   serial loop for every thread count.
//! * **Earliest-index errors.** When items can fail, the error returned
//!   is the one belonging to the earliest item in traversal order — the
//!   exact error a serial loop reports — regardless of which thread hit
//!   it first. Parallel runs still evaluate every item (coverage is
//!   never silently dropped by a failure elsewhere).
//! * **Trace affinity.** Workers pin deterministic trace lanes (one
//!   block reserved per pool via [`trace::reserve_lanes`]) and open
//!   per-chunk [`trace::Level::Chunk`] spans parented on the caller's
//!   innermost span, so cross-thread work stays attributed to the run
//!   that spawned it — the same contract the fault-trial lanes pioneered.
//!
//! With one thread (or one item) the pool degenerates to the plain serial
//! loop on the calling thread: no spawn, no chunk spans, no queue.
//!
//! [`ExecOptions`] is the one knob the public entry points share; see
//! [`crate::simulator::Simulator`] for the session-style front end.

use std::convert::Infallible;
use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};

use mnsim_obs::trace;

/// Chunks handed out per worker on average; >1 lets the queue rebalance
/// around slow items, while keeping per-chunk overhead negligible.
const CHUNKS_PER_WORKER: usize = 4;

/// Execution options shared by every public entry point
/// ([`crate::simulate::simulate_with`],
/// [`crate::fault_sim::simulate_with_faults_with`],
/// [`crate::dse::explore_with`],
/// [`crate::validate::validate_against_circuit_with`], and the
/// [`crate::simulator::Simulator`] facade).
///
/// One struct replaces the historical per-subsystem knobs
/// (`FaultConfig::threads`, the `explore_parallel` thread argument, and
/// the `--metrics` / `--trace` CLI plumbing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecOptions {
    /// Worker threads: `0` uses the machine's available parallelism, `1`
    /// forces the serial path. Results are bit-identical either way.
    pub threads: usize,
    /// Collect an observability snapshot and attach it to the report
    /// (honored by [`crate::simulator::Simulator`], which owns the
    /// exclusive metrics session).
    pub metrics: bool,
    /// Record a hierarchical trace and attach its summary to the report
    /// (honored by [`crate::simulator::Simulator`], which owns the
    /// exclusive trace session).
    pub trace: bool,
}

impl Default for ExecOptions {
    /// Auto thread count, no metrics, no trace.
    fn default() -> Self {
        ExecOptions {
            threads: 0,
            metrics: false,
            trace: false,
        }
    }
}

impl ExecOptions {
    /// Single-threaded execution, no metrics, no trace — the exact
    /// behavior of the historical serial entry points.
    pub fn serial() -> Self {
        ExecOptions {
            threads: 1,
            ..ExecOptions::default()
        }
    }

    /// A fixed worker-thread count (`0` = auto).
    pub fn with_threads(threads: usize) -> Self {
        ExecOptions {
            threads,
            ..ExecOptions::default()
        }
    }

    /// The concrete worker count: `threads`, with `0` resolved to the
    /// machine's available parallelism.
    pub fn resolved_threads(&self) -> usize {
        resolve_threads(self.threads)
    }
}

/// Resolves the `0 = auto` convention against the machine.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    } else {
        threads
    }
}

/// Runs `f(index)` for every index in `0..n` and returns the results in
/// index order, using up to `threads` workers (`0` = auto).
///
/// This is the engine primitive: a scoped worker pool pulling chunks off
/// an atomic cursor, collecting `(index, result)` pairs, and reducing in
/// index order. With `threads <= 1` or `n <= 1` it is exactly the serial
/// `(0..n).map(f).collect()`.
///
/// # Errors
///
/// Returns the error of the **earliest** failing index, matching what a
/// serial loop would report. The parallel path evaluates every index even
/// after a failure; the serial path stops at the first error (the
/// returned error is identical either way).
pub fn try_map_n<R, E, F>(n: usize, threads: usize, f: F) -> Result<Vec<R>, E>
where
    R: Send,
    E: Send,
    F: Fn(usize) -> Result<R, E> + Sync,
{
    let threads = resolve_threads(threads).min(n.max(1));
    if threads <= 1 {
        return (0..n).map(f).collect();
    }

    let parent = trace::current_span();
    let lane_base = trace::reserve_lanes(threads as u64);
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, Result<R, E>)>> = Mutex::new(Vec::with_capacity(n));

    let f_ref = &f;
    let cursor_ref = &cursor;
    let collected_ref = &collected;
    std::thread::scope(|scope| {
        for worker in 0..threads {
            scope.spawn(move || {
                trace::pin_lane(lane_base + worker as u64);
                let mut local: Vec<(usize, Result<R, E>)> = Vec::new();
                loop {
                    let start = cursor_ref.fetch_add(chunk, Ordering::Relaxed);
                    if start >= n {
                        break;
                    }
                    let end = (start + chunk).min(n);
                    let _chunk_span = trace::span_under(
                        "exec.chunk",
                        trace::Level::Chunk,
                        (start / chunk) as i64,
                        parent,
                    );
                    for index in start..end {
                        local.push((index, f_ref(index)));
                    }
                }
                collected_ref
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });

    let mut collected = collected
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    collected.sort_by_key(|(index, _)| *index);
    // A sorted fold: the first Err encountered belongs to the earliest
    // failing index, exactly as the serial traversal reports it.
    collected.into_iter().map(|(_, result)| result).collect()
}

/// Infallible [`try_map_n`]: runs `f(index)` for `0..n` and returns the
/// results in index order.
pub fn map_n<R, F>(n: usize, threads: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    match try_map_n::<R, Infallible, _>(n, threads, |index| Ok(f(index))) {
        Ok(results) => results,
        Err(never) => match never {},
    }
}

/// Runs `f(index, &items[index])` over a slice and returns the results in
/// item order. See [`try_map_n`] for the determinism contract.
///
/// # Errors
///
/// Returns the error of the earliest failing item.
pub fn try_map_slice<T, R, E, F>(items: &[T], threads: usize, f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(usize, &T) -> Result<R, E> + Sync,
{
    try_map_n(items.len(), threads, |index| f(index, &items[index]))
}

/// Infallible [`try_map_slice`].
pub fn map_slice<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    map_n(items.len(), threads, |index| f(index, &items[index]))
}

/// Splits `0..n` into at most `shards` contiguous, near-equal,
/// **deterministic** ranges (empty ranges are never produced).
///
/// The chunk queue of [`try_map_n`] assigns items to workers dynamically,
/// which is fine for pure per-item work but wrong for stateful sweeps: a
/// warm-started CG chain must see a *reproducible* neighbor sequence.
/// Shard boundaries from this function depend only on `(n, shards)`, so a
/// sharded stateful sweep is deterministic for a fixed shard count.
pub fn shard_ranges(n: usize, shards: usize) -> Vec<Range<usize>> {
    let shards = shards.clamp(1, n.max(1));
    let base = n / shards;
    let extra = n % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for shard in 0..shards {
        let len = base + usize::from(shard < extra);
        if len == 0 {
            break;
        }
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_and_builders() {
        let d = ExecOptions::default();
        assert_eq!(d.threads, 0);
        assert!(!d.metrics && !d.trace);
        assert_eq!(ExecOptions::serial().threads, 1);
        assert_eq!(ExecOptions::with_threads(7).threads, 7);
        assert!(ExecOptions::serial().resolved_threads() == 1);
        assert!(ExecOptions::default().resolved_threads() >= 1);
    }

    #[test]
    fn map_n_is_in_order_for_every_thread_count() {
        let expected: Vec<usize> = (0..103).map(|i| i * i).collect();
        for threads in [1, 2, 3, 7, 64] {
            assert_eq!(map_n(103, threads, |i| i * i), expected, "threads={threads}");
        }
        assert_eq!(map_n(0, 4, |i| i), Vec::<usize>::new());
        assert_eq!(map_n(1, 4, |i| i + 1), vec![1]);
    }

    #[test]
    fn map_slice_passes_items_and_indices() {
        let items = ["a", "bb", "ccc", "dddd", "eeeee"];
        let out = map_slice(&items, 3, |i, s| (i, s.len()));
        assert_eq!(out, vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
    }

    #[test]
    fn earliest_error_wins_for_every_thread_count() {
        // Items 5 and 11 fail; every thread count must report item 5.
        for threads in [1, 2, 7, 64] {
            let err = try_map_n::<usize, String, _>(16, threads, |i| {
                if i == 5 || i == 11 {
                    Err(format!("item {i} failed"))
                } else {
                    Ok(i)
                }
            })
            .unwrap_err();
            assert_eq!(err, "item 5 failed", "threads={threads}");
        }
    }

    #[test]
    fn parallel_run_evaluates_every_item_despite_errors() {
        use std::sync::atomic::AtomicUsize;
        let evaluated = AtomicUsize::new(0);
        let result = try_map_n::<(), &str, _>(40, 4, |i| {
            evaluated.fetch_add(1, Ordering::Relaxed);
            if i == 0 {
                Err("first item fails")
            } else {
                Ok(())
            }
        });
        assert!(result.is_err());
        assert_eq!(evaluated.load(Ordering::Relaxed), 40);
    }

    #[test]
    fn shard_ranges_cover_exactly_once() {
        for n in [0usize, 1, 2, 7, 16, 100] {
            for shards in [1usize, 2, 3, 7, 64] {
                let ranges = shard_ranges(n, shards);
                let covered: Vec<usize> = ranges.iter().cloned().flatten().collect();
                assert_eq!(covered, (0..n).collect::<Vec<_>>(), "n={n} shards={shards}");
                assert!(ranges.iter().all(|r| !r.is_empty()), "n={n} shards={shards}");
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(Range::len).max(),
                    ranges.iter().map(Range::len).min(),
                ) {
                    assert!(max - min <= 1, "n={n} shards={shards}");
                }
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_float_reductions() {
        // The canonical-order reduction makes even non-associative float
        // folds bit-identical across thread counts.
        let serial: f64 = map_n(1000, 1, |i| (i as f64).sqrt() * 0.1)
            .iter()
            .sum();
        for threads in [2, 7, 64] {
            let parallel: f64 = map_n(1000, threads, |i| (i as f64).sqrt() * 0.1)
                .iter()
                .sum();
            assert_eq!(serial.to_bits(), parallel.to_bits(), "threads={threads}");
        }
    }
}
