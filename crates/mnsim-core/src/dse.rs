//! Design-space exploration (paper §VII.C/D).
//!
//! MNSIM explores designs by exhaustive traversal — cheap because one
//! behavior-level evaluation takes microseconds ("All the 10,220 designs
//! are simulated within 4 seconds"). The swept variables are the paper's
//! three: crossbar size, computation parallelism degree, and interconnect
//! technology node. Results support per-metric optima (Tables IV/VI),
//! constrained sweeps (Table V), trade-off curves (Figs. 7/8) and Pareto
//! filtering.

use std::fmt::Write as _;
use std::time::Instant;

use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_obs::JsonValue;
use mnsim_tech::interconnect::InterconnectNode;

use crate::checkpoint::{self, CheckpointPolicy};
use crate::config::Config;
use crate::error::{ConfigError, CoreError};
use crate::exec::{self, ExecError, ExecOptions, Interrupt, RunControl};
use crate::simulate::{simulate, Report};

static DSE_POINTS: obs::Counter = obs::Counter::new("core.dse.points");
static DSE_FEASIBLE: obs::Counter = obs::Counter::new("core.dse.feasible");
static DSE_INFEASIBLE: obs::Counter = obs::Counter::new("core.dse.infeasible");
static DSE_ERRORS: obs::Counter = obs::Counter::new("core.dse.errors");
static POINT_SPAN: obs::Span = obs::Span::new("core.dse.point");
static EXPLORE_SPAN: obs::Span = obs::Span::new("core.dse.explore");
static POINTS_PER_SEC: obs::Gauge = obs::Gauge::new("core.dse.points_per_sec");

/// The swept parameter ranges.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignSpace {
    /// Crossbar sizes to try (powers of two in `4..=1024`).
    pub crossbar_sizes: Vec<usize>,
    /// Parallelism degrees to try (entries larger than the crossbar size
    /// are skipped for that size).
    pub parallelism_degrees: Vec<usize>,
    /// Interconnect nodes to try.
    pub interconnects: Vec<InterconnectNode>,
}

impl DesignSpace {
    /// The paper's large-computation-bank sweep (§VII.C): sizes double
    /// from 4 to 1024, parallelism from 1 to 128, wires
    /// {18, 22, 28, 36, 45} nm.
    pub fn paper_large_bank() -> Self {
        DesignSpace {
            crossbar_sizes: doubling(4, 1024),
            parallelism_degrees: doubling(1, 128),
            interconnects: InterconnectNode::BANK_SWEEP.to_vec(),
        }
    }

    /// The paper's CNN sweep (§VII.D): same ranges with the interconnect
    /// range enlarged up to 90 nm.
    pub fn paper_cnn() -> Self {
        DesignSpace {
            crossbar_sizes: doubling(4, 1024),
            parallelism_degrees: doubling(1, 128),
            interconnects: InterconnectNode::ALL.to_vec(),
        }
    }

    /// Number of raw combinations (before the `p ≤ size` filter).
    pub fn len(&self) -> usize {
        self.crossbar_sizes.len() * self.parallelism_degrees.len() * self.interconnects.len()
    }

    /// `true` if the space contains no combinations.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Validates the swept ranges before a traversal starts.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] with one typed [`ConfigError`] per
    /// empty range, and one for a space whose every combination is
    /// removed by the `parallelism ≤ crossbar size` filter — instead of
    /// silently producing a degenerate zero-point exploration.
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut errors = Vec::new();
        if self.crossbar_sizes.is_empty() {
            errors.push(ConfigError {
                field_path: "DesignSpace.crossbar_sizes".into(),
                reason: "no crossbar sizes to sweep".into(),
                allowed: "at least one size".into(),
            });
        }
        if self.parallelism_degrees.is_empty() {
            errors.push(ConfigError {
                field_path: "DesignSpace.parallelism_degrees".into(),
                reason: "no parallelism degrees to sweep".into(),
                allowed: "at least one degree".into(),
            });
        }
        if self.interconnects.is_empty() {
            errors.push(ConfigError {
                field_path: "DesignSpace.interconnects".into(),
                reason: "no interconnect nodes to sweep".into(),
                allowed: "at least one node".into(),
            });
        }
        if errors.is_empty() && self.combinations().is_empty() {
            errors.push(ConfigError {
                field_path: "DesignSpace.parallelism_degrees".into(),
                reason: "every combination is filtered out (all degrees exceed every \
                         crossbar size)"
                    .into(),
                allowed: "at least one degree ≤ the largest crossbar size".into(),
            });
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(CoreError::Config { errors })
        }
    }

    /// All valid `(size, parallelism, interconnect)` combinations.
    fn combinations(&self) -> Vec<(usize, usize, InterconnectNode)> {
        let mut combos = Vec::with_capacity(self.len());
        for &size in &self.crossbar_sizes {
            for &p in &self.parallelism_degrees {
                if p > size {
                    continue;
                }
                for &wire in &self.interconnects {
                    combos.push((size, p, wire));
                }
            }
        }
        combos
    }
}

fn doubling(from: usize, to: usize) -> Vec<usize> {
    let mut v = Vec::new();
    let mut x = from;
    while x <= to {
        v.push(x);
        x *= 2;
    }
    v
}

/// Feasibility constraints applied before ranking.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Constraints {
    /// Upper bound on the single-crossbar computing error rate `ε`
    /// (the paper uses 25 % for the bank study, 50 % for the CNN study).
    pub max_crossbar_error: Option<f64>,
    /// Upper bound on total area in mm².
    pub max_area_mm2: Option<f64>,
    /// Upper bound on average power in watts.
    pub max_power_w: Option<f64>,
}

impl Constraints {
    /// A crossbar-error bound alone (the paper's setup).
    pub fn crossbar_error(bound: f64) -> Self {
        Constraints {
            max_crossbar_error: Some(bound),
            ..Constraints::default()
        }
    }

    /// `true` if the report satisfies every bound.
    pub fn admits(&self, report: &Report) -> bool {
        if let Some(bound) = self.max_crossbar_error {
            if report.worst_crossbar_epsilon > bound {
                return false;
            }
        }
        if let Some(bound) = self.max_area_mm2 {
            if report.total_area.square_millimeters() > bound {
                return false;
            }
        }
        if let Some(bound) = self.max_power_w {
            if report.power.watts() > bound {
                return false;
            }
        }
        true
    }
}

/// The optimization target of a per-metric optimum (Table IV columns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Minimize total area.
    Area,
    /// Minimize energy per sample.
    Energy,
    /// Minimize end-to-end sample latency.
    Latency,
    /// Minimize the final output error rate ("Computation Accuracy").
    Accuracy,
    /// Minimize average power.
    Power,
}

impl Objective {
    /// The four Table-IV/VI columns.
    pub const TABLE_COLUMNS: [Objective; 4] = [
        Objective::Area,
        Objective::Energy,
        Objective::Latency,
        Objective::Accuracy,
    ];

    /// Extracts the (to-be-minimized) metric from a report.
    pub fn value(&self, report: &Report) -> f64 {
        match self {
            Objective::Area => report.total_area.square_millimeters(),
            Objective::Energy => report.energy_per_sample.microjoules(),
            Objective::Latency => report.sample_latency.microseconds(),
            Objective::Accuracy => report.output_max_error_rate,
            Objective::Power => report.power.watts(),
        }
    }
}

impl std::fmt::Display for Objective {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Objective::Area => write!(f, "area"),
            Objective::Energy => write!(f, "energy"),
            Objective::Latency => write!(f, "latency"),
            Objective::Accuracy => write!(f, "accuracy"),
            Objective::Power => write!(f, "power"),
        }
    }
}

/// One evaluated design.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Crossbar size of this design.
    pub crossbar_size: usize,
    /// Parallelism degree of this design.
    pub parallelism: usize,
    /// Interconnect node of this design.
    pub interconnect: InterconnectNode,
    /// The full simulation report.
    pub report: Report,
}

/// The outcome of a traversal.
#[derive(Debug, Clone, PartialEq)]
pub struct DseResult {
    /// Raw combinations evaluated (including infeasible ones).
    pub evaluated: usize,
    /// Designs passing the constraints.
    pub feasible: Vec<DesignPoint>,
}

impl DseResult {
    /// The feasible design minimizing `objective` (ties broken by smaller
    /// area).
    pub fn best(&self, objective: Objective) -> Option<&DesignPoint> {
        self.feasible.iter().min_by(|a, b| {
            objective
                .value(&a.report)
                .total_cmp(&objective.value(&b.report))
                .then(
                    Objective::Area
                        .value(&a.report)
                        .total_cmp(&Objective::Area.value(&b.report)),
                )
        })
    }

    /// The feasible design minimizing `primary` with `secondary` as the
    /// tie-break (the paper's "secondary optimization target" for
    /// accuracy, §VII.C-1).
    pub fn best_with_secondary(
        &self,
        primary: Objective,
        secondary: Objective,
    ) -> Option<&DesignPoint> {
        let best_value = self
            .feasible
            .iter()
            .map(|p| primary.value(&p.report))
            .min_by(f64::total_cmp)?;
        self.feasible
            .iter()
            .filter(|p| primary.value(&p.report) <= best_value * 1.000001)
            .min_by(|a, b| {
                secondary
                    .value(&a.report)
                    .total_cmp(&secondary.value(&b.report))
            })
    }

    /// The Pareto-optimal subset under the given objectives (all
    /// minimized).
    pub fn pareto(&self, objectives: &[Objective]) -> Vec<&DesignPoint> {
        let dominated = |a: &DesignPoint, b: &DesignPoint| -> bool {
            // b dominates a: no worse everywhere, better somewhere.
            let mut strictly_better = false;
            for obj in objectives {
                let (va, vb) = (obj.value(&a.report), obj.value(&b.report));
                if vb > va {
                    return false;
                }
                if vb < va {
                    strictly_better = true;
                }
            }
            strictly_better
        };
        self.feasible
            .iter()
            .filter(|a| !self.feasible.iter().any(|b| dominated(a, b)))
            .collect()
    }
}

/// Exhaustively traverses `space` around `base` (the network, device,
/// CMOS node, precisions and sense resistance are taken from `base`; the
/// three swept parameters are overridden).
///
/// # Errors
///
/// Returns [`CoreError::EmptyDesignSpace`] if no combination passes the
/// constraints, and propagates evaluation errors.
pub fn explore(
    base: &Config,
    space: &DesignSpace,
    constraints: &Constraints,
) -> Result<DseResult, CoreError> {
    explore_with(base, space, constraints, &ExecOptions::serial())
}

/// Exhaustively traverses `space` around `base` on the shared [`exec`]
/// worker pool.
///
/// Feasible designs are returned in traversal order (the order the
/// design-space enumeration visits them) for every thread count, and
/// the parallel path returns the error belonging to the *earliest*
/// combination in traversal order — exactly what the serial traversal
/// reports. The serial path stops at the first error; the parallel path
/// still evaluates every combination (coverage is never silently dropped
/// by a failure elsewhere).
///
/// # Errors
///
/// Returns [`CoreError::EmptyDesignSpace`] if no combination passes the
/// constraints, and propagates evaluation errors.
pub fn explore_with(
    base: &Config,
    space: &DesignSpace,
    constraints: &Constraints,
    options: &ExecOptions,
) -> Result<DseResult, CoreError> {
    explore_controlled(base, space, constraints, options, &RunControl::default(), None)
}

/// [`explore_with`] under a campaign control plane: the traversal
/// observes `control`'s [`CancelToken`](crate::exec::CancelToken) and
/// [`Deadline`](crate::exec::Deadline) at chunk boundaries, and — when a
/// [`CheckpointPolicy`] is given — persists which combinations have been
/// evaluated (and whether they were feasible) so an interrupted sweep can
/// resume.
///
/// The checkpoint stores the evaluated-combination set and feasibility
/// flags, **not** the full simulation reports: on resume, previously
/// *infeasible* combinations are skipped outright, while feasible ones
/// are re-evaluated (evaluation is pure and seedless, so re-evaluation is
/// deterministic and the resumed [`DseResult`] — including its Pareto
/// front — is bit-identical to an uninterrupted traversal). Feasible sets
/// are typically a small fraction of the sweep, so the re-evaluation cost
/// is marginal compared to serializing every [`Report`].
///
/// # Errors
///
/// Everything [`explore_with`] returns, plus [`CoreError::Cancelled`] /
/// [`CoreError::DeadlineExceeded`] on interruption (carrying the
/// checkpoint path when one was written), [`CoreError::WorkerPanic`] for
/// a panicking evaluation, [`CoreError::Config`] for an invalid
/// [`DesignSpace`], and [`CoreError::Checkpoint`] for unusable or
/// mismatched checkpoint files.
pub fn explore_controlled(
    base: &Config,
    space: &DesignSpace,
    constraints: &Constraints,
    options: &ExecOptions,
    control: &RunControl,
    checkpoint_policy: Option<&CheckpointPolicy>,
) -> Result<DseResult, CoreError> {
    let _span = EXPLORE_SPAN.enter();
    let _trace_span = trace::span("dse.explore", trace::Level::Run);
    space.validate()?;
    let started = Instant::now();
    let combos = space.combinations();
    let fingerprint = sweep_fingerprint(base, space, constraints);

    // Outer None = not yet evaluated; inner Option = feasible or not.
    let mut slots: Vec<Option<Option<DesignPoint>>> = (0..combos.len()).map(|_| None).collect();
    if let Some(policy) = checkpoint_policy {
        if policy.path.is_empty() {
            return Err(CoreError::Config {
                errors: vec![ConfigError {
                    field_path: "CheckpointPolicy.path".into(),
                    reason: "checkpoint path is empty".into(),
                    allowed: "a writable file path".into(),
                }],
            });
        }
        if std::path::Path::new(&policy.path).exists() {
            let resumed = load_dse_checkpoint(&policy.path, fingerprint, &mut slots)?;
            checkpoint::note_resumed(resumed);
        }
    }

    // Wave grain: the checkpoint cadence when one is configured,
    // otherwise the live-telemetry progress grain (single wave when
    // telemetry is off — the exact legacy sweep).
    let wave_len = match checkpoint_policy {
        Some(policy) => policy.every_n.max(1),
        None => obs::live::wave_grain(combos.len()),
    };
    let remaining: Vec<usize> = (0..combos.len()).filter(|&i| slots[i].is_none()).collect();
    let mut done = combos.len() - remaining.len();
    obs::live::campaign_started("dse_sweep", combos.len(), done);
    let mut failure: Option<ExecError<CoreError>> = None;
    let mut interrupt = None;

    for wave in remaining.chunks(wave_len.min(remaining.len().max(1))) {
        if control.interrupted().is_some() {
            interrupt = control.interrupted();
            // An interrupted sweep must always leave its checkpoint on disk,
            // even when the control plane tripped before the first wave.
            if let Some(policy) = checkpoint_policy {
                write_dse_checkpoint(policy, fingerprint, combos.len(), &slots)?;
                obs::live::checkpoint_written(&policy.path, done);
            }
            break;
        }
        let wave_report = exec::run_indices(wave, options.threads, control, |index| {
            let (size, p, wire) = combos[index];
            let point = evaluate_point(base, size, p, wire)?;
            let admitted = constraints.admits(&point.report);
            record_admission(admitted);
            Ok::<_, CoreError>(admitted.then_some(point))
        });
        done += wave_report.completed;
        for (position, slot) in wave_report.results.into_iter().enumerate() {
            if let Some(outcome) = slot {
                slots[wave[position]] = Some(outcome);
            }
        }
        if let Some(policy) = checkpoint_policy {
            write_dse_checkpoint(policy, fingerprint, combos.len(), &slots)?;
            obs::live::checkpoint_written(&policy.path, done);
        }
        if wave_report.error.is_some() {
            failure = wave_report.error;
            break;
        }
        if wave_report.interrupt.is_some() {
            interrupt = wave_report.interrupt;
            break;
        }
        // Clean waves only — see the determinism note in `fault_sim`.
        obs::live::wave_completed(done, combos.len(), control.deadline.map(|d| d.remaining()));
    }

    let completed = slots.iter().filter(|slot| slot.is_some()).count();
    let checkpoint_path = checkpoint_policy.map(|policy| policy.path.clone());
    if let Some(error) = failure {
        obs::live::campaign_finished(completed, combos.len(), "failed");
        return Err(match error {
            ExecError::Item { error, .. } => error,
            ExecError::WorkerPanic { index, payload } => CoreError::WorkerPanic { index, payload },
            ExecError::Cancelled { .. } => CoreError::Cancelled {
                completed,
                total: combos.len(),
                checkpoint: checkpoint_path,
            },
            ExecError::DeadlineExceeded { .. } => CoreError::DeadlineExceeded {
                completed,
                total: combos.len(),
                checkpoint: checkpoint_path,
            },
        });
    }
    if completed < combos.len() {
        obs::live::campaign_finished(completed, combos.len(), "interrupted");
        let kind = interrupt
            .or_else(|| control.interrupted())
            .unwrap_or(Interrupt::Cancelled);
        return Err(match kind {
            Interrupt::Cancelled => CoreError::Cancelled {
                completed,
                total: combos.len(),
                checkpoint: checkpoint_path,
            },
            Interrupt::DeadlineExceeded => CoreError::DeadlineExceeded {
                completed,
                total: combos.len(),
                checkpoint: checkpoint_path,
            },
        });
    }

    obs::live::campaign_finished(combos.len(), combos.len(), "complete");
    let feasible: Vec<DesignPoint> = slots
        .into_iter()
        .filter_map(|slot| slot.expect("complete traversal evaluated every combination"))
        .collect();
    record_throughput(combos.len(), started);
    finish(combos.len(), feasible, constraints)
}

/// Fingerprints the sweep identity: base config, swept ranges, and
/// constraints (feasibility flags depend on them); excludes thread count
/// and the checkpoint policy.
pub(crate) fn sweep_fingerprint(
    base: &Config,
    space: &DesignSpace,
    constraints: &Constraints,
) -> u64 {
    let canonical = format!("dse|config={base:?}|space={space:?}|constraints={constraints:?}");
    checkpoint::fnv64(canonical.as_bytes())
}

/// Writes the evaluated-combination set atomically in the versioned
/// checkpoint format.
fn write_dse_checkpoint(
    policy: &CheckpointPolicy,
    fingerprint: u64,
    combos: usize,
    slots: &[Option<Option<DesignPoint>>],
) -> Result<(), CoreError> {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"schema\": ");
    let _ = write!(out, "{}", checkpoint::SCHEMA_VERSION);
    out.push_str(",\n  \"kind\": \"dse\",\n  \"fingerprint\": ");
    checkpoint::push_json_string(&mut out, &checkpoint::hex_u64(fingerprint));
    out.push_str(",\n  \"combos\": ");
    let _ = write!(out, "{combos}");
    out.push_str(",\n  \"evaluated\": [");
    let mut first = true;
    for (index, slot) in slots.iter().enumerate() {
        let Some(outcome) = slot else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "\n    {{\"index\": {index}, \"feasible\": {}}}",
            outcome.is_some()
        );
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    checkpoint::write_atomic(&policy.path, &out)?;
    checkpoint::note_written(slots.iter().filter(|slot| slot.is_some()).count());
    Ok(())
}

/// Loads a DSE checkpoint, marking previously-infeasible combinations as
/// evaluated (feasible ones stay pending for deterministic
/// re-evaluation). Returns how many combinations were skipped outright.
fn load_dse_checkpoint(
    path: &str,
    fingerprint: u64,
    slots: &mut [Option<Option<DesignPoint>>],
) -> Result<usize, CoreError> {
    let malformed = |reason: String| CoreError::Checkpoint {
        path: path.to_string(),
        reason,
    };
    let value = checkpoint::read_json(path)?;
    checkpoint::check_header(path, &value, "dse")?;
    let found = checkpoint::require_hex_u64(path, &value, "fingerprint")?;
    if found != fingerprint {
        return Err(malformed(format!(
            "fingerprint {} does not match this sweep ({}); refusing to resume a different \
             config/space/constraints",
            checkpoint::hex_u64(found),
            checkpoint::hex_u64(fingerprint),
        )));
    }
    let combos = value.get("combos").and_then(JsonValue::as_f64);
    if combos != Some(slots.len() as f64) {
        return Err(malformed(format!(
            "combination count {combos:?} does not match sweep ({})",
            slots.len()
        )));
    }
    let evaluated = value
        .get("evaluated")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| malformed("missing `evaluated` array".into()))?;
    let mut resumed = 0usize;
    for record in evaluated {
        let index = record
            .get("index")
            .and_then(JsonValue::as_f64)
            .filter(|i| i.fract() == 0.0 && *i >= 0.0 && *i < slots.len() as f64)
            .ok_or_else(|| malformed("evaluated record with missing/out-of-range `index`".into()))?
            as usize;
        let feasible = match record.get("feasible") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err(malformed(format!("combination {index}: bad `feasible`"))),
        };
        if !feasible {
            // Only infeasible combinations are skipped; feasible ones are
            // re-evaluated so the result carries full reports.
            slots[index] = Some(None);
            resumed += 1;
        }
    }
    Ok(resumed)
}

fn evaluate_point(
    base: &Config,
    size: usize,
    parallelism: usize,
    interconnect: InterconnectNode,
) -> Result<DesignPoint, CoreError> {
    let _span = POINT_SPAN.enter();
    let _trace_span = trace::span("dse.point", trace::Level::Stage);
    DSE_POINTS.inc();
    let mut config = base.clone();
    config.crossbar_size = size;
    config.parallelism = parallelism;
    config.interconnect = interconnect;
    let report = simulate(&config).inspect_err(|_| DSE_ERRORS.inc())?;
    Ok(DesignPoint {
        crossbar_size: size,
        parallelism,
        interconnect,
        report,
    })
}

fn record_admission(admitted: bool) {
    if admitted {
        DSE_FEASIBLE.inc();
    } else {
        DSE_INFEASIBLE.inc();
    }
}

fn record_throughput(points: usize, started: Instant) {
    let elapsed = started.elapsed().as_secs_f64();
    if elapsed > 0.0 {
        POINTS_PER_SEC.set(points as f64 / elapsed);
    }
}

fn finish(
    evaluated: usize,
    feasible: Vec<DesignPoint>,
    constraints: &Constraints,
) -> Result<DseResult, CoreError> {
    if feasible.is_empty() {
        return Err(CoreError::EmptyDesignSpace {
            constraints: format!("{constraints:?}"),
        });
    }
    Ok(DseResult {
        evaluated,
        feasible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_space() -> DesignSpace {
        DesignSpace {
            crossbar_sizes: vec![32, 64, 128],
            parallelism_degrees: vec![1, 16, 64],
            interconnects: vec![InterconnectNode::N28, InterconnectNode::N45],
        }
    }

    fn base() -> Config {
        Config::fully_connected_mlp(&[512, 256]).unwrap()
    }

    #[test]
    fn doubling_ranges() {
        assert_eq!(doubling(4, 64), vec![4, 8, 16, 32, 64]);
        assert_eq!(doubling(1, 1), vec![1]);
    }

    #[test]
    fn paper_space_size_matches_order_of_magnitude() {
        // The paper sweeps thousands of designs for the bank study; sizes
        // 4..1024 × p 1..128 × 5 wires with the p ≤ size filter lands in
        // the same range.
        let space = DesignSpace::paper_large_bank();
        let combos = space.combinations();
        assert!(combos.len() > 200 && combos.len() < 20_000, "{}", combos.len());
    }

    #[test]
    fn parallelism_filtered_by_size() {
        let space = DesignSpace {
            crossbar_sizes: vec![8],
            parallelism_degrees: vec![1, 8, 64],
            interconnects: vec![InterconnectNode::N45],
        };
        assert_eq!(space.combinations().len(), 2); // 64 > 8 dropped
    }

    #[test]
    fn explore_finds_per_metric_optima() {
        let result = explore(&base(), &small_space(), &Constraints::default()).unwrap();
        assert_eq!(result.evaluated, small_space().combinations().len());
        let area_best = result.best(Objective::Area).unwrap();
        let lat_best = result.best(Objective::Latency).unwrap();
        assert!(
            Objective::Area.value(&area_best.report)
                <= Objective::Area.value(&lat_best.report)
        );
        assert!(
            Objective::Latency.value(&lat_best.report)
                <= Objective::Latency.value(&area_best.report)
        );
    }

    #[test]
    fn constraints_filter_designs() {
        let unconstrained = explore(&base(), &small_space(), &Constraints::default()).unwrap();
        let tight = Constraints::crossbar_error(
            unconstrained
                .feasible
                .iter()
                .map(|p| p.report.worst_crossbar_epsilon)
                .fold(f64::INFINITY, f64::min)
                * 1.01,
        );
        let constrained = explore(&base(), &small_space(), &tight).unwrap();
        assert!(constrained.feasible.len() < unconstrained.feasible.len());
    }

    #[test]
    fn impossible_constraints_error() {
        let c = Constraints::crossbar_error(0.0);
        assert!(matches!(
            explore(&base(), &small_space(), &c),
            Err(CoreError::EmptyDesignSpace { .. })
        ));
    }

    #[test]
    fn parallel_matches_serial() {
        let serial = explore(&base(), &small_space(), &Constraints::default()).unwrap();
        for threads in [0usize, 2, 4, 7] {
            let parallel = explore_with(
                &base(),
                &small_space(),
                &Constraints::default(),
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            // Traversal order + pure evaluation: the whole result is
            // bit-identical to the serial traversal.
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn pareto_contains_every_single_objective_optimum() {
        let result = explore(&base(), &small_space(), &Constraints::default()).unwrap();
        let front = result.pareto(&[Objective::Area, Objective::Latency]);
        assert!(!front.is_empty());
        let area_best = result.best(Objective::Area).unwrap();
        assert!(front.iter().any(|p| {
            Objective::Area.value(&p.report) == Objective::Area.value(&area_best.report)
        }));
        // Every front member must be non-dominated.
        for a in &front {
            for b in &result.feasible {
                let better_area =
                    Objective::Area.value(&b.report) < Objective::Area.value(&a.report);
                let better_lat =
                    Objective::Latency.value(&b.report) < Objective::Latency.value(&a.report);
                let no_worse_area =
                    Objective::Area.value(&b.report) <= Objective::Area.value(&a.report);
                let no_worse_lat =
                    Objective::Latency.value(&b.report) <= Objective::Latency.value(&a.report);
                assert!(
                    !(no_worse_area && no_worse_lat && (better_area || better_lat)),
                    "front member dominated"
                );
            }
        }
    }

    #[test]
    fn secondary_objective_breaks_ties() {
        let result = explore(&base(), &small_space(), &Constraints::default()).unwrap();
        let best = result
            .best_with_secondary(Objective::Accuracy, Objective::Area)
            .unwrap();
        let plain = result.best(Objective::Accuracy).unwrap();
        assert!(
            Objective::Accuracy.value(&best.report)
                <= Objective::Accuracy.value(&plain.report) * 1.000001
        );
    }
}
