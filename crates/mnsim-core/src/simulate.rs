//! The top-level simulation flow (paper §IV.A, Fig. 3): generate the
//! hierarchy from the configuration, evaluate modules bottom-up, and attach
//! the computing-accuracy estimation.

use mnsim_obs as obs;
use mnsim_obs::{trace, MetricsSnapshot, TraceSummary};
use mnsim_tech::units::{Area, Energy, Power, Time};

use crate::accuracy::{propagate, AccuracyModel, Case, LayerAccuracy};
use crate::arch::accelerator::{evaluate_accelerator_with, AcceleratorModelResult};
use crate::arch::bank::BankModelResult;
use crate::config::Config;
use crate::error::CoreError;
use crate::exec::{self, ExecOptions};
use crate::fault_sim::FaultSummary;

static SIMULATE_RUNS: obs::Counter = obs::Counter::new("core.simulate.runs");
static SIMULATE_SPAN: obs::Span = obs::Span::new("core.simulate.total");
static STAGE_ACCELERATOR: obs::Span = obs::Span::new("core.simulate.stage.accelerator");
static STAGE_ACCURACY: obs::Span = obs::Span::new("core.simulate.stage.accuracy");
static STAGE_PROPAGATE: obs::Span = obs::Span::new("core.simulate.stage.propagate");

/// The complete simulation result for one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// The configuration that produced this report.
    pub config: Config,
    /// Hierarchical performance evaluation.
    pub accelerator: AcceleratorModelResult,
    /// Per-bank accuracy after propagation (Eq. 15).
    pub layer_accuracy: Vec<LayerAccuracy>,
    /// The largest single-crossbar voltage error rate `ε` in the design
    /// (the quantity the paper's DSE constrains to ≤ 25 %).
    pub worst_crossbar_epsilon: f64,
    /// Worst-case output error rate after all layers.
    pub output_max_error_rate: f64,
    /// Average output error rate after all layers.
    pub output_avg_error_rate: f64,
    /// Total layout area.
    pub total_area: Area,
    /// Dynamic energy per input sample.
    pub energy_per_sample: Energy,
    /// End-to-end latency of one sample.
    pub sample_latency: Time,
    /// Latency of one pipeline cycle (largest bank cycle).
    pub pipeline_cycle: Time,
    /// Average power of a single-sample run.
    pub power: Power,
    /// Fault-injection campaign results; `None` for a clean simulation
    /// (populated by [`crate::fault_sim::simulate_with_faults_with`]).
    pub faults: Option<FaultSummary>,
    /// Observability snapshot; `None` unless attached via
    /// [`Report::with_metrics`] (e.g. by a `--metrics` run).
    pub metrics: Option<MetricsSnapshot>,
    /// Hierarchical trace aggregation; `None` unless attached via
    /// [`Report::with_trace`] (e.g. by a `--trace` run).
    pub trace: Option<TraceSummary>,
}

impl Report {
    /// Attaches an observability snapshot (typically
    /// [`mnsim_obs::snapshot`] taken after the run that produced this
    /// report).
    #[must_use]
    pub fn with_metrics(mut self, metrics: MetricsSnapshot) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Attaches the aggregated trace of the run that produced this report
    /// (typically `trace_session.finish().summary()`).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceSummary) -> Self {
        self.trace = Some(trace);
        self
    }
}

/// Runs the full MNSIM simulation for `config` on the calling thread.
///
/// Equivalent to [`simulate_with`] with [`ExecOptions::serial`]; the
/// threaded engine produces bit-identical reports, so callers that want
/// the worker pool (or a [`Report`] with metrics/trace attached) should
/// use [`simulate_with`] or the [`crate::simulator::Simulator`] facade.
///
/// # Errors
///
/// Returns configuration validation errors.
pub fn simulate(config: &Config) -> Result<Report, CoreError> {
    simulate_with(config, &ExecOptions::serial())
}

/// Runs the full MNSIM simulation for `config` on the shared [`exec`]
/// worker pool.
///
/// The two per-bank stages — hierarchy evaluation and the ε accuracy
/// model — spread independent banks over `options.threads` workers; the
/// per-bank partial results are collected in canonical bank order before
/// any reduction, so the returned [`Report`] is **bit-identical** to the
/// serial run for every thread count. The `metrics` / `trace` flags are
/// consumed by the [`crate::simulator::Simulator`] facade (which owns the
/// exclusive sessions); this function only reads `options.threads`.
///
/// # Errors
///
/// Returns configuration validation errors.
pub fn simulate_with(config: &Config, options: &ExecOptions) -> Result<Report, CoreError> {
    let _span = SIMULATE_SPAN.enter();
    let _trace_span = trace::span("simulate", trace::Level::Run);
    SIMULATE_RUNS.inc();

    let accelerator = {
        let _stage = STAGE_ACCELERATOR.enter();
        let _tstage = trace::span("accelerator", trace::Level::Stage);
        evaluate_accelerator_with(config, options)?
    };

    // ε per bank: the crossbar geometry actually used by its units.
    let epsilons: Vec<f64> = {
        let _stage = STAGE_ACCURACY.enter();
        let _tstage = trace::span("accuracy", trace::Level::Stage);
        let accuracy = AccuracyModel::from_config(config);
        let bank_epsilon = |bank: &BankModelResult| {
            accuracy.error_rate(
                bank.unit.rows_used,
                bank.unit.physical_cols,
                config.interconnect,
                &config.device,
                Case::Worst,
            )
        };
        let threads = options
            .resolved_threads()
            .min(accelerator.banks.len().max(1));
        if threads <= 1 {
            accelerator.banks.iter().map(bank_epsilon).collect()
        } else {
            exec::map_slice(&accelerator.banks, threads, |_, bank| bank_epsilon(bank))
        }
    };
    // Canonical-order fold over the ordered ε list: identical to serial.
    let worst_crossbar_epsilon = epsilons.iter().cloned().fold(0.0, f64::max);

    let layer_accuracy = {
        let _stage = STAGE_PROPAGATE.enter();
        let _tstage = trace::span("propagate", trace::Level::Stage);
        propagate(&epsilons, config.output_levels())
    };
    let last = layer_accuracy
        .last()
        .ok_or_else(|| CoreError::InvalidConfig {
            parameter: "network",
            reason: "network produced no banks to simulate".into(),
        })?;
    let output_max_error_rate = last.max_error_rate;
    let output_avg_error_rate = last.avg_error_rate;

    Ok(Report {
        total_area: accelerator.total_area,
        energy_per_sample: accelerator.energy_per_sample,
        sample_latency: accelerator.sample_latency,
        pipeline_cycle: accelerator.pipeline_cycle,
        power: accelerator.average_power,
        config: config.clone(),
        accelerator,
        layer_accuracy,
        worst_crossbar_epsilon,
        output_max_error_rate,
        output_avg_error_rate,
        faults: None,
        metrics: None,
        trace: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_simulation_of_reference_mlp() {
        let config = Config::fully_connected_mlp(&[128, 128, 128]).unwrap();
        let report = simulate(&config).unwrap();
        assert_eq!(report.layer_accuracy.len(), 2);
        assert!(report.total_area.square_millimeters() > 0.0);
        assert!(report.worst_crossbar_epsilon > 0.0);
        assert!(report.output_max_error_rate >= report.output_avg_error_rate);
        assert!(report.output_max_error_rate < 1.0);
    }

    #[test]
    fn accuracy_depends_on_interconnect() {
        let mut config = Config::fully_connected_mlp(&[256, 256]).unwrap();
        config.interconnect = mnsim_tech::interconnect::InterconnectNode::N90;
        let coarse = simulate(&config).unwrap();
        config.interconnect = mnsim_tech::interconnect::InterconnectNode::N18;
        let fine = simulate(&config).unwrap();
        assert!(fine.worst_crossbar_epsilon > coarse.worst_crossbar_epsilon);
        assert!(fine.output_max_error_rate >= coarse.output_max_error_rate);
        // Performance side is unchanged by wire choice except settle time.
        assert_eq!(
            fine.total_area.square_meters(),
            coarse.total_area.square_meters()
        );
    }

    #[test]
    fn report_totals_match_accelerator() {
        let config = Config::fully_connected_mlp(&[512, 128]).unwrap();
        let report = simulate(&config).unwrap();
        assert_eq!(
            report.total_area.square_meters(),
            report.accelerator.total_area.square_meters()
        );
        assert_eq!(
            report.energy_per_sample.joules(),
            report.accelerator.energy_per_sample.joules()
        );
    }

    #[test]
    fn parallel_simulation_is_bit_identical() {
        for config in [
            Config::fully_connected_mlp(&[512, 256, 128]).unwrap(),
            Config::vgg16_cnn(),
        ] {
            let serial = simulate(&config).unwrap();
            for threads in [0usize, 2, 7, 64] {
                let parallel = simulate_with(&config, &ExecOptions::with_threads(threads)).unwrap();
                assert_eq!(serial, parallel, "threads={threads}");
            }
        }
    }

    #[test]
    fn deeper_network_more_output_error() {
        let shallow = simulate(&Config::fully_connected_mlp(&[128, 128]).unwrap()).unwrap();
        let deep =
            simulate(&Config::fully_connected_mlp(&[128, 128, 128, 128, 128]).unwrap()).unwrap();
        assert!(deep.output_max_error_rate >= shallow.output_max_error_rate);
    }
}
