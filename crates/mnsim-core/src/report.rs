//! Report formatting: human-readable summaries, CSV export, and the
//! accelerator-level area breakdown.

use std::fmt::Write as _;

use mnsim_tech::units::Area;

use crate::dse::DseResult;
use crate::simulate::Report;

/// Formats a [`Report`] as a multi-line summary table.
pub fn format_report(report: &Report) -> String {
    let mut out = String::new();
    let config = &report.config;
    let _ = writeln!(out, "MNSIM simulation report — {}", config.network.name);
    let _ = writeln!(
        out,
        "  configuration: {} | crossbar {} | wire {} | parallelism {} | {} | {}-bit out",
        config.cmos,
        config.crossbar_size,
        config.interconnect,
        if config.parallelism == 0 {
            "full".to_string()
        } else {
            config.parallelism.to_string()
        },
        config.network_type,
        config.precision.output_bits,
    );
    let _ = writeln!(out, "  banks: {}", report.accelerator.banks.len());
    let _ = writeln!(
        out,
        "  area:               {:>12.4} mm²",
        report.total_area.square_millimeters()
    );
    let _ = writeln!(
        out,
        "  energy per sample:  {:>12.4} µJ",
        report.energy_per_sample.microjoules()
    );
    let _ = writeln!(
        out,
        "  sample latency:     {:>12.4} µs",
        report.sample_latency.microseconds()
    );
    let _ = writeln!(
        out,
        "  pipeline cycle:     {:>12.4} µs",
        report.pipeline_cycle.microseconds()
    );
    let _ = writeln!(out, "  power:              {:>12.4} W", report.power.watts());
    let _ = writeln!(
        out,
        "  worst crossbar ε:   {:>12.4} %",
        report.worst_crossbar_epsilon * 100.0
    );
    let _ = writeln!(
        out,
        "  output error (max): {:>12.4} %",
        report.output_max_error_rate * 100.0
    );
    let _ = writeln!(
        out,
        "  output error (avg): {:>12.4} %",
        report.output_avg_error_rate * 100.0
    );
    if let Some(faults) = &report.faults {
        let _ = writeln!(
            out,
            "  fault campaign:     {:>12} trials ({} retired)",
            faults.trials, faults.retired_trials
        );
        let _ = writeln!(
            out,
            "  array yield:        {:>12.4} %",
            faults.yield_fraction * 100.0
        );
        let _ = writeln!(
            out,
            "  solver fallbacks:   {:>12.4} % of {} solves",
            faults.fallback_rate() * 100.0,
            faults.solves
        );
        let _ = writeln!(
            out,
            "  fault deviation:    {:>12.4} levels mean / {:.4} levels p95",
            faults.mean_deviation_levels, faults.p95_deviation_levels
        );
        let _ = writeln!(
            out,
            "  weight damage:      {:>12.4} levels mean",
            faults.mean_weight_damage_levels
        );
    }
    out
}

/// Formats the per-bank detail lines of a report.
pub fn format_bank_details(report: &Report) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "  {:>4} {:>10} {:>8} {:>12} {:>12} {:>10}",
        "bank", "units", "ops", "cycle (µs)", "energy (µJ)", "ε (%)"
    );
    for (i, (bank, acc)) in report
        .accelerator
        .banks
        .iter()
        .zip(&report.layer_accuracy)
        .enumerate()
    {
        let _ = writeln!(
            out,
            "  {:>4} {:>10} {:>8} {:>12.4} {:>12.4} {:>10.3}",
            i,
            bank.unit_count,
            bank.ops_per_sample,
            bank.cycle.latency.microseconds(),
            bank.sample.dynamic_energy.microjoules(),
            acc.crossbar_epsilon * 100.0,
        );
    }
    out
}

/// Accelerator-level area breakdown (supports claims like the paper's
/// "ADC circuits take about half of the area", §V.C).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Memristor arrays.
    pub crossbars: Area,
    /// Address decoders.
    pub decoders: Area,
    /// DACs + ADCs/SAs.
    pub converters: Area,
    /// Digital periphery inside the units (MUX, subtractors, mergers).
    pub unit_digital: Area,
    /// Bank-level periphery (adder trees, pooling, neurons, buffers).
    pub bank_peripheral: Area,
    /// Accelerator I/O interfaces.
    pub interface: Area,
}

impl AreaBreakdown {
    /// Total area (must equal the report's total).
    pub fn total(&self) -> Area {
        self.crossbars
            + self.decoders
            + self.converters
            + self.unit_digital
            + self.bank_peripheral
            + self.interface
    }

    /// The converters' share of the total (0..1).
    pub fn converter_fraction(&self) -> f64 {
        self.converters / self.total()
    }
}

/// Computes the accelerator-wide area breakdown of a report.
pub fn area_breakdown(report: &Report) -> AreaBreakdown {
    let mut breakdown = AreaBreakdown {
        interface: report.accelerator.interface_in.area + report.accelerator.interface_out.area,
        ..AreaBreakdown::default()
    };
    for bank in &report.accelerator.banks {
        let n = bank.unit_count as f64;
        breakdown.crossbars += bank.unit.breakdown.crossbar * n;
        breakdown.decoders += bank.unit.breakdown.decoder * n;
        breakdown.converters += bank.unit.breakdown.converters * n;
        breakdown.unit_digital += bank.unit.breakdown.digital * n;
        let units_total = bank.unit.breakdown.total() * n;
        breakdown.bank_peripheral += bank.area() - units_total;
    }
    for link in &report.accelerator.links {
        breakdown.bank_peripheral += link.area;
    }
    breakdown
}

/// The CSV header matching [`report_csv_row`].
///
/// The four fault columns are empty for clean simulations and populated by
/// [`crate::fault_sim::simulate_with_faults_with`].
pub const CSV_HEADER: &str = "network,crossbar_size,parallelism,interconnect_nm,cmos_nm,\
area_mm2,energy_uj,sample_latency_us,pipeline_cycle_us,power_w,\
worst_epsilon,output_max_error,output_avg_error,\
yield,fault_fallback_rate,fault_dev_mean_levels,fault_dev_p95_levels";

/// One report as a CSV row (see [`CSV_HEADER`]).
pub fn report_csv_row(report: &Report) -> String {
    let c = &report.config;
    let fault_columns = match &report.faults {
        Some(faults) => format!(
            "{:.6},{:.6},{:.6},{:.6}",
            faults.yield_fraction,
            faults.fallback_rate(),
            faults.mean_deviation_levels,
            faults.p95_deviation_levels,
        ),
        None => ",,,".into(),
    };
    format!(
        "{},{},{},{},{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6},{}",
        // Network names may contain commas (e.g. "mlp-[128, 128]").
        c.network.name.replace([',', ' '], "_"),
        c.crossbar_size,
        c.parallelism,
        c.interconnect.nanometers(),
        c.cmos.nanometers(),
        report.total_area.square_millimeters(),
        report.energy_per_sample.microjoules(),
        report.sample_latency.microseconds(),
        report.pipeline_cycle.microseconds(),
        report.power.watts(),
        report.worst_crossbar_epsilon,
        report.output_max_error_rate,
        report.output_avg_error_rate,
        fault_columns,
    )
}

/// Serializes a [`Report`]'s numerical summary as a canonical JSON
/// object (hand-rolled — the workspace is dependency-free by design).
///
/// Exact decimal formatting via Rust's shortest-roundtrip `{}` float
/// rendering: two reports produce byte-identical JSON **iff** their
/// summary numbers are bit-identical, which is what the API-facade
/// equivalence suite asserts across thread counts. The optional
/// `metrics` / `trace` attachments carry wall-clock data and are
/// deliberately excluded; `faults` is included because campaign
/// statistics are deterministic.
pub fn report_json(report: &Report) -> String {
    let c = &report.config;
    let mut out = String::from("{");
    let _ = write!(
        out,
        "\"network\":\"{}\",\"crossbar_size\":{},\"parallelism\":{},\
         \"interconnect_nm\":{},\"cmos_nm\":{},\"banks\":{}",
        c.network.name.replace('"', "'"),
        c.crossbar_size,
        c.parallelism,
        c.interconnect.nanometers(),
        c.cmos.nanometers(),
        report.accelerator.banks.len(),
    );
    let _ = write!(
        out,
        ",\"area_mm2\":{},\"energy_uj\":{},\"sample_latency_us\":{},\
         \"pipeline_cycle_us\":{},\"power_w\":{},\"worst_epsilon\":{},\
         \"output_max_error\":{},\"output_avg_error\":{}",
        report.total_area.square_millimeters(),
        report.energy_per_sample.microjoules(),
        report.sample_latency.microseconds(),
        report.pipeline_cycle.microseconds(),
        report.power.watts(),
        report.worst_crossbar_epsilon,
        report.output_max_error_rate,
        report.output_avg_error_rate,
    );
    let _ = write!(out, ",\"layer_epsilons\":[");
    for (i, layer) in report.layer_accuracy.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}", layer.crossbar_epsilon);
    }
    out.push(']');
    match &report.faults {
        Some(faults) => {
            let _ = write!(
                out,
                ",\"faults\":{{\"trials\":{},\"yield\":{},\"retired\":{},\
                 \"solves\":{},\"fallback_solves\":{},\"mean_deviation_levels\":{},\
                 \"p95_deviation_levels\":{},\"mean_weight_damage_levels\":{}}}",
                faults.trials,
                faults.yield_fraction,
                faults.retired_trials,
                faults.solves,
                faults.fallback_solves,
                faults.mean_deviation_levels,
                faults.p95_deviation_levels,
                faults.mean_weight_damage_levels,
            );
        }
        None => out.push_str(",\"faults\":null"),
    }
    out.push('}');
    out
}

/// A whole DSE result as CSV (header + one row per feasible design).
pub fn dse_csv(result: &DseResult) -> String {
    let mut out = String::from(CSV_HEADER);
    out.push('\n');
    for point in &result.feasible {
        out.push_str(&report_csv_row(&point.report));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::simulate::simulate;

    #[test]
    fn report_contains_key_metrics() {
        let config = Config::fully_connected_mlp(&[128, 128, 128]).unwrap();
        let report = simulate(&config).unwrap();
        let text = format_report(&report);
        assert!(text.contains("mm²"));
        assert!(text.contains("µJ"));
        assert!(text.contains("worst crossbar"));
        assert!(text.contains("banks: 2"));
    }

    #[test]
    fn bank_details_have_one_line_per_bank() {
        let config = Config::fully_connected_mlp(&[128, 64, 32]).unwrap();
        let report = simulate(&config).unwrap();
        let text = format_bank_details(&report);
        // header + 2 banks
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn area_breakdown_sums_to_total() {
        // Multi-bank network so inter-bank links are exercised too.
        let config = Config::fully_connected_mlp(&[512, 512, 256]).unwrap();
        let report = simulate(&config).unwrap();
        assert!(!report.accelerator.links.is_empty());
        let breakdown = area_breakdown(&report);
        let total = breakdown.total().square_meters();
        let reported = report.total_area.square_meters();
        assert!(
            (total - reported).abs() / reported < 1e-9,
            "{total} vs {reported}"
        );
    }

    #[test]
    fn converters_dominate_fully_parallel_designs() {
        // The paper's §V.C claim: ADCs take about half of the area in a
        // fully parallel design.
        let mut config = Config::fully_connected_mlp(&[2048, 1024]).unwrap();
        config.parallelism = 0; // one read circuit per column
        let report = simulate(&config).unwrap();
        let breakdown = area_breakdown(&report);
        let fraction = breakdown.converter_fraction();
        assert!(
            fraction > 0.3,
            "converters only {:.0} % of area",
            fraction * 100.0
        );
        // Sharing the read circuits slashes that share.
        config.parallelism = 1;
        let shared = area_breakdown(&simulate(&config).unwrap());
        assert!(shared.converter_fraction() < fraction);
    }

    #[test]
    fn csv_row_matches_header_columns() {
        let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
        let report = simulate(&config).unwrap();
        let row = report_csv_row(&report);
        assert_eq!(
            row.split(',').count(),
            CSV_HEADER.split(',').count(),
            "row: {row}"
        );
    }

    #[test]
    fn csv_fault_columns_populated_by_fault_sim() {
        use crate::exec::ExecOptions;
        use crate::fault_sim::{simulate_with_faults_with, FaultConfig};
        let config = Config::fully_connected_mlp(&[64, 32]).unwrap();
        let fault_config = FaultConfig {
            trials: 2,
            ..FaultConfig::default()
        };
        let report =
            simulate_with_faults_with(&config, &fault_config, &ExecOptions::default()).unwrap();
        let row = report_csv_row(&report);
        assert_eq!(row.split(',').count(), CSV_HEADER.split(',').count());
        assert!(!row.ends_with(",,,"), "fault columns must be filled: {row}");
        let text = format_report(&report);
        assert!(text.contains("array yield"));
        assert!(text.contains("solver fallbacks"));
    }

    #[test]
    fn report_json_is_canonical_and_distinguishes_values() {
        let config = Config::fully_connected_mlp(&[128, 128]).unwrap();
        let report = simulate(&config).unwrap();
        let a = report_json(&report);
        let b = report_json(&simulate(&config).unwrap());
        assert_eq!(a, b, "deterministic runs must serialize identically");
        assert!(a.starts_with('{') && a.ends_with('}'));
        assert!(a.contains("\"faults\":null"));
        assert!(a.contains("\"banks\":1"));

        let mut other = config.clone();
        other.crossbar_size = 64;
        assert_ne!(a, report_json(&simulate(&other).unwrap()));
    }

    #[test]
    fn dse_csv_has_one_line_per_feasible_design() {
        use crate::dse::{explore, Constraints, DesignSpace};
        let base = Config::fully_connected_mlp(&[256, 256]).unwrap();
        let space = DesignSpace {
            crossbar_sizes: vec![64, 128],
            parallelism_degrees: vec![8],
            interconnects: vec![mnsim_tech::interconnect::InterconnectNode::N45],
        };
        let result = explore(&base, &space, &Constraints::default()).unwrap();
        let csv = dse_csv(&result);
        assert_eq!(csv.lines().count(), 1 + result.feasible.len());
        assert!(csv.starts_with("network,"));
    }
}
