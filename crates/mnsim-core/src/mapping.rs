//! Weight-matrix partitioning onto crossbars (paper §III.B-1, Eq. 5).
//!
//! A weight matrix larger than one crossbar is split into a grid of
//! sub-matrices; each sub-matrix (together with its peripheral circuits)
//! becomes one *computation unit*, and the partial results of the units in
//! a column of the grid are merged by the bank's adder tree.

use crate::config::Config;

/// The partition of one `rows × cols` weight matrix onto crossbars of a
/// given size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Weight-matrix rows (= inputs of the matrix-vector multiplication).
    pub matrix_rows: usize,
    /// Weight-matrix columns (= outputs).
    pub matrix_cols: usize,
    /// Crossbar rows/columns.
    pub crossbar_size: usize,
    /// Physical columns one logical output occupies (2 for shared-crossbar
    /// signed mapping).
    pub columns_per_output: usize,
}

impl Partition {
    /// Builds the partition for one bank of `config`.
    pub fn new(config: &Config, matrix_rows: usize, matrix_cols: usize) -> Self {
        Partition {
            matrix_rows,
            matrix_cols,
            crossbar_size: config.crossbar_size,
            columns_per_output: config.columns_per_output(),
        }
    }

    /// Logical outputs that fit in one crossbar.
    pub fn outputs_per_crossbar(&self) -> usize {
        (self.crossbar_size / self.columns_per_output).max(1)
    }

    /// Sub-matrix grid rows: `ceil(matrix_rows / crossbar_size)`.
    pub fn row_blocks(&self) -> usize {
        self.matrix_rows.div_ceil(self.crossbar_size)
    }

    /// Sub-matrix grid columns: `ceil(matrix_cols / outputs_per_crossbar)`.
    pub fn col_blocks(&self) -> usize {
        self.matrix_cols.div_ceil(self.outputs_per_crossbar())
    }

    /// Total computation units in the bank (grid cells).
    pub fn unit_count(&self) -> usize {
        self.row_blocks() * self.col_blocks()
    }

    /// Inputs actually used in grid row `block` (the last block may be
    /// ragged).
    ///
    /// # Panics
    ///
    /// Panics if `block >= row_blocks()`.
    pub fn rows_in_block(&self, block: usize) -> usize {
        assert!(block < self.row_blocks(), "row block out of range");
        if block + 1 == self.row_blocks() {
            self.matrix_rows - block * self.crossbar_size
        } else {
            self.crossbar_size
        }
    }

    /// Logical outputs produced by grid column `block`.
    ///
    /// # Panics
    ///
    /// Panics if `block >= col_blocks()`.
    pub fn cols_in_block(&self, block: usize) -> usize {
        assert!(block < self.col_blocks(), "col block out of range");
        let per = self.outputs_per_crossbar();
        if block + 1 == self.col_blocks() {
            self.matrix_cols - block * per
        } else {
            per
        }
    }

    /// Inputs used by the widest (first) row block — what the worst-case
    /// unit model uses.
    pub fn max_rows_used(&self) -> usize {
        self.matrix_rows.min(self.crossbar_size)
    }

    /// Logical outputs of the widest (first) column block.
    pub fn max_cols_used(&self) -> usize {
        self.matrix_cols.min(self.outputs_per_crossbar())
    }

    /// Crossbar utilization: used cells / available cells over all units.
    pub fn utilization(&self) -> f64 {
        let used = (self.matrix_rows * self.matrix_cols * self.columns_per_output) as f64;
        let available =
            (self.unit_count() * self.crossbar_size * self.crossbar_size) as f64;
        used / available
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{Config, SignedMapping};

    fn base_config() -> Config {
        Config::fully_connected_mlp(&[2048, 1024]).unwrap()
    }

    #[test]
    fn exact_fit() {
        let p = Partition::new(&base_config(), 2048, 1024); // size 128
        assert_eq!(p.row_blocks(), 16);
        assert_eq!(p.col_blocks(), 8);
        assert_eq!(p.unit_count(), 128);
        assert_eq!(p.rows_in_block(15), 128);
        assert_eq!(p.cols_in_block(7), 128);
        assert!((p.utilization() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ragged_edges() {
        let p = Partition::new(&base_config(), 200, 130);
        assert_eq!(p.row_blocks(), 2);
        assert_eq!(p.col_blocks(), 2);
        assert_eq!(p.rows_in_block(0), 128);
        assert_eq!(p.rows_in_block(1), 72);
        assert_eq!(p.cols_in_block(0), 128);
        assert_eq!(p.cols_in_block(1), 2);
        assert!(p.utilization() < 0.5);
    }

    #[test]
    fn shared_crossbar_halves_outputs() {
        let mut config = base_config();
        config.signed_mapping = SignedMapping::SharedCrossbar;
        let p = Partition::new(&config, 128, 128);
        assert_eq!(p.outputs_per_crossbar(), 64);
        assert_eq!(p.col_blocks(), 2);
        assert_eq!(p.unit_count(), 2);
    }

    #[test]
    fn small_matrix_single_unit() {
        let p = Partition::new(&base_config(), 64, 16);
        assert_eq!(p.unit_count(), 1);
        assert_eq!(p.max_rows_used(), 64);
        assert_eq!(p.max_cols_used(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn block_bounds_checked() {
        let p = Partition::new(&base_config(), 128, 128);
        let _ = p.rows_in_block(1);
    }

    #[test]
    fn sum_of_blocks_covers_matrix() {
        let p = Partition::new(&base_config(), 300, 201);
        let rows: usize = (0..p.row_blocks()).map(|b| p.rows_in_block(b)).sum();
        let cols: usize = (0..p.col_blocks()).map(|b| p.cols_in_block(b)).sum();
        assert_eq!(rows, 300);
        assert_eq!(cols, 201);
    }
}
