//! # mnsim-core — the MNSIM simulation platform
//!
//! A behavior-level simulator for memristor-based neuromorphic computing
//! accelerators, reproducing Xia et al., *MNSIM: Simulation Platform for
//! Memristor-based Neuromorphic Computing System* (DATE 2016).
//!
//! The platform follows the paper's structure:
//!
//! * [`config`] — the Table-I configuration (three hierarchy levels),
//! * [`arch`] — Accelerator → Computation Bank → Computation Unit models,
//! * [`modules`] — reference circuit-module performance models (§V),
//! * [`mapping`] — weight-matrix partitioning onto crossbars,
//! * [`accuracy`] — the behavior-level computing-accuracy model (§VI),
//! * [`mod@simulate`] — the end-to-end simulation flow (§IV, Fig. 3),
//! * [`exec`] — the shared worker-pool execution engine
//!   ([`ExecOptions`], deterministic parallel map/reduce, cooperative
//!   cancellation/deadlines and per-item panic isolation),
//! * [`checkpoint`] — deterministic checkpoint/resume for long campaigns
//!   ([`CheckpointPolicy`]),
//! * [`cache`] — the fingerprint-keyed cross-request artifact cache
//!   ([`ArtifactCache`]) behind [`Session`] and `mnsim-serve`,
//! * [`simulator`] — the [`Simulator`] session facade over simulate,
//!   fault campaigns, DSE and validation,
//! * [`dse`] — design-space exploration by exhaustive traversal (§VII),
//! * [`netlist_gen`] — SPICE netlist generation for circuit-level
//!   verification,
//! * [`circuit_forward`] — circuit-backed layer forward passes over
//!   batched activations (prepared systems + warm-started CG),
//! * [`validate`] — the model-vs-circuit validation harness (Tables II/III),
//! * [`custom`] — customized designs: PRIME and ISAAC (Table VII),
//! * [`training`] — on-chip training cost model (paper future work),
//! * [`memory_mode`] — NVSim-style evaluation of the fabric as memory,
//! * [`instruction`] — the basic WRITE/READ/COMPUTE instruction set (§III.D).
//!
//! # Examples
//!
//! ```
//! use mnsim_core::config::Config;
//! use mnsim_core::simulate::simulate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = Config::fully_connected_mlp(&[2048, 1024])?;
//! let report = simulate(&config)?;
//! println!("area: {:.2} mm²", report.total_area.square_millimeters());
//! println!("worst crossbar ε: {:.2} %", report.worst_crossbar_epsilon * 100.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]
// Library code must surface failures as typed errors; tests may unwrap.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod accuracy;
pub mod arch;
pub mod cache;
pub mod checkpoint;
pub mod circuit_forward;
pub mod config;
pub mod custom;
pub mod dse;
pub mod error;
pub mod exec;
pub mod fault_sim;
pub mod instruction;
pub mod mapping;
pub mod memory_mode;
pub mod modules;
pub mod netlist_gen;
pub mod perf;
pub mod report;
pub mod simulate;
pub mod simulator;
pub mod training;
pub mod validate;

pub use cache::{Artifact, ArtifactCache, CacheStats};
pub use checkpoint::CheckpointPolicy;
pub use circuit_forward::CircuitLayer;
pub use config::{Config, NetworkType, Precision, SignedMapping, WeightPolarity};
pub use error::{ConfigError, CoreError};
pub use exec::{CancelToken, Deadline, ExecError, ExecOptions, RunControl};
pub use fault_sim::{FaultConfig, FaultSummary};
pub use perf::ModulePerf;
pub use simulate::{simulate, simulate_with, Report};
pub use simulator::{RunHandle, Session, Simulator};
