//! The three-level hierarchical structure of a memristor-based
//! neuromorphic accelerator (paper §III):
//!
//! * [`accelerator`] — Level 1: I/O interfaces + cascaded banks,
//! * [`bank`] — Level 2: units + adder tree + pooling + neurons + buffers,
//! * [`mod@unit`] — Level 3: crossbars + decoders + DACs + read circuits.

pub mod accelerator;
pub mod bank;
pub mod unit;

pub use accelerator::{evaluate_accelerator, AcceleratorModelResult};
pub use bank::{evaluate_bank, BankModelResult};
pub use unit::{evaluate_unit, UnitAreaBreakdown, UnitModelResult};
