//! Level-2: the computation bank (paper §III.B, Fig. 1(c)).
//!
//! A bank processes one neuromorphic layer: a grid of computation units
//! (the partitioned weight matrix), an adder tree merging the row-block
//! partial sums, the pooling module + pooling line buffer (CNN), the
//! non-linear neuron modules, and the output buffer.

use mnsim_nn::descriptor::BankDescriptor;
use mnsim_obs::trace;
use mnsim_tech::units::{Area, Power};

use crate::arch::unit::{evaluate_unit, UnitModelResult};
use crate::config::{Config, NetworkType};
use crate::mapping::Partition;
use crate::modules::digital::{adder_tree, register_bank};
use crate::modules::neuron::reference_neuron;
use crate::modules::pooling::{line_buffer, line_buffer_length, pooling_module};
use crate::perf::ModulePerf;

/// The evaluated performance of one computation bank.
#[derive(Debug, Clone, PartialEq)]
pub struct BankModelResult {
    /// How the weight matrix is spread over crossbars.
    pub partition: Partition,
    /// The (worst-case, full-block) unit evaluation.
    pub unit: UnitModelResult,
    /// Units in the bank.
    pub unit_count: usize,
    /// Matrix-vector multiplications per input sample.
    pub ops_per_sample: usize,
    /// One pipeline cycle: one MVM through units → adder tree → pooling →
    /// neuron → buffer. Its `area`/`leakage` cover the whole bank.
    pub cycle: ModulePerf,
    /// A full sample through this bank (`ops_per_sample` cycles plus
    /// per-sample neuron costs).
    pub sample: ModulePerf,
}

impl BankModelResult {
    /// Bank area (alias of `cycle.area`).
    pub fn area(&self) -> Area {
        self.cycle.area
    }

    /// Bank leakage (alias of `cycle.leakage`).
    pub fn leakage(&self) -> Power {
        self.cycle.leakage
    }
}

/// Evaluates one computation bank.
///
/// `next_kernel` is the `(i+1)`-th layer's convolution kernel size, used to
/// size the output line buffer per the paper's Eq. (6); `None` falls back
/// to a plain output register bank (fully-connected next layer or final
/// output).
pub fn evaluate_bank(
    config: &Config,
    bank: &BankDescriptor,
    next_kernel: Option<usize>,
) -> BankModelResult {
    let _trace_span = trace::span("bank", trace::Level::Bank);
    let cmos = config.cmos.params();
    let bits = config.precision.output_bits;

    let matrix_rows = bank.matrix_rows();
    let matrix_cols = bank.matrix_cols();
    let partition = Partition::new(config, matrix_rows, matrix_cols);
    let unit_count = partition.unit_count();
    let unit = evaluate_unit(config, partition.max_rows_used(), partition.max_cols_used());
    let ops_per_sample = bank.ops_per_sample();

    // Concurrent outputs per cycle: every column block delivers
    // `parallelism` converted outputs at a time.
    let concurrent_outputs = (unit.parallelism * partition.col_blocks()).max(1);

    // Adder tree per concurrent output, merging the row blocks (Eq. 5).
    let tree = adder_tree(&cmos, partition.row_blocks(), bits);
    let trees = tree.replicate_parallel(concurrent_outputs);

    // Pooling (CNN banks with a pooling stage).
    let (pool_window, conv_out_w, out_channels) = match bank {
        BankDescriptor::Conv { shape, pooling } => {
            let (_, ow) = shape.output_hw();
            (pooling.unwrap_or(0), ow, shape.out_channels)
        }
        BankDescriptor::FullyConnected { .. } => (0, 0, 0),
    };
    let has_pooling = config.network_type == NetworkType::Cnn && pool_window >= 2;
    let (pool, pool_buffers) = if has_pooling {
        let module = pooling_module(&cmos, pool_window, bits).replicate_parallel(concurrent_outputs);
        let len = line_buffer_length(conv_out_w, pool_window, pool_window);
        let buffers = line_buffer(&cmos, len, bits).replicate_parallel(out_channels);
        (module, buffers)
    } else {
        (ModulePerf::ZERO, ModulePerf::ZERO)
    };

    // Neuron modules: one per output neuron for fully-connected banks
    // (each output register is wired to a neuron, §III.B-5); time-shared
    // across pixels for convolution banks.
    let neuron = reference_neuron(&cmos, config.network_type, bits);
    let neuron_count = match bank {
        BankDescriptor::FullyConnected { outputs, .. } => *outputs,
        BankDescriptor::Conv { .. } => concurrent_outputs,
    };
    let neurons = neuron.replicate_parallel(neuron_count);

    // Output buffer: C_out registers for fully-connected layers; line
    // buffers sized by the next layer's kernel (Eq. 6) for Conv layers.
    let out_buffer = match bank {
        BankDescriptor::FullyConnected { outputs, .. } => register_bank(&cmos, *outputs, bits),
        BankDescriptor::Conv { shape, pooling } => {
            let (_, mut ow) = shape.output_hw();
            if let Some(p) = pooling {
                ow /= p.max(&1);
            }
            let k = next_kernel.unwrap_or(3);
            let len = line_buffer_length(ow, k, k);
            line_buffer(&cmos, len, bits).replicate_parallel(shape.out_channels)
        }
    };

    // ---- one pipeline cycle -------------------------------------------------
    let cycle_area = unit.mvm.area * unit_count as f64
        + trees.area
        + pool.area
        + pool_buffers.area
        + neurons.area
        + out_buffer.area;
    let cycle_leakage = unit.mvm.leakage * unit_count as f64
        + trees.leakage
        + pool.leakage
        + pool_buffers.leakage
        + neurons.leakage
        + out_buffer.leakage;
    let pool_cycle_latency = if has_pooling {
        pool.latency / concurrent_outputs as f64
    } else {
        mnsim_tech::units::Time::ZERO
    };
    let cycle_latency = unit.mvm.latency
        + tree.latency
        + pool_cycle_latency
        + neuron.latency
        + out_buffer.latency;
    // Energy of one cycle: all units fire, the trees merge, buffers shift.
    let pool_cycle_energy = if has_pooling {
        // The pooling module produces one result per window² inputs.
        pool.dynamic_energy / (pool_window * pool_window) as f64 + pool_buffers.dynamic_energy
    } else {
        mnsim_tech::units::Energy::ZERO
    };
    let neuron_cycle_energy = match bank {
        // FC: all output neurons fire once in the single cycle.
        BankDescriptor::FullyConnected { .. } => neurons.dynamic_energy,
        // Conv: the shared neurons fire every cycle.
        BankDescriptor::Conv { .. } => neuron.dynamic_energy * concurrent_outputs as f64,
    };
    let cycle_energy = unit.mvm.dynamic_energy * unit_count as f64
        + trees.dynamic_energy
        + pool_cycle_energy
        + neuron_cycle_energy
        + out_buffer.dynamic_energy;

    // Trace attribution: the bank-level latency terms on top of the unit
    // MVM (which attributes its own modules), so that the per-module time
    // sums telescope exactly to the cycle latency.
    if trace::enabled() {
        trace::module_perf(
            "adder_tree",
            tree.latency.seconds(),
            trees.dynamic_energy.joules(),
        );
        if has_pooling {
            trace::module_perf(
                "pooling",
                pool_cycle_latency.seconds(),
                pool_cycle_energy.joules(),
            );
        }
        trace::module_perf(
            "neuron",
            neuron.latency.seconds(),
            neuron_cycle_energy.joules(),
        );
        trace::module_perf(
            "out_buffer",
            out_buffer.latency.seconds(),
            out_buffer.dynamic_energy.joules(),
        );
    }

    let cycle = ModulePerf {
        area: cycle_area,
        latency: cycle_latency,
        dynamic_energy: cycle_energy,
        leakage: cycle_leakage,
    };

    // ---- a full sample --------------------------------------------------------
    let sample = ModulePerf {
        area: cycle_area,
        latency: cycle.latency * ops_per_sample as f64,
        dynamic_energy: cycle.dynamic_energy * ops_per_sample as f64,
        leakage: cycle_leakage,
    };

    BankModelResult {
        partition,
        unit,
        unit_count,
        ops_per_sample,
        cycle,
        sample,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_nn::descriptor::{BankDescriptor, ConvShape};

    fn fc_config() -> Config {
        Config::fully_connected_mlp(&[2048, 1024]).unwrap()
    }

    fn fc_bank() -> BankDescriptor {
        BankDescriptor::FullyConnected {
            inputs: 2048,
            outputs: 1024,
        }
    }

    #[test]
    fn fc_bank_counts() {
        let b = evaluate_bank(&fc_config(), &fc_bank(), None);
        assert_eq!(b.unit_count, 16 * 8);
        assert_eq!(b.ops_per_sample, 1);
        assert_eq!(b.sample.latency, b.cycle.latency);
    }

    #[test]
    fn bank_area_exceeds_units_area() {
        let b = evaluate_bank(&fc_config(), &fc_bank(), None);
        let units_only = b.unit.mvm.area.square_meters() * b.unit_count as f64;
        assert!(b.area().square_meters() > units_only);
    }

    #[test]
    fn larger_crossbars_reduce_fc_bank_area() {
        // The paper's Table V trend: bigger crossbars → fewer peripheral
        // circuits → less area.
        let mut small = fc_config();
        small.crossbar_size = 64;
        let mut large = fc_config();
        large.crossbar_size = 256;
        let a_small = evaluate_bank(&small, &fc_bank(), None).area();
        let a_large = evaluate_bank(&large, &fc_bank(), None).area();
        assert!(
            a_large.square_meters() < a_small.square_meters(),
            "{} !< {}",
            a_large.square_millimeters(),
            a_small.square_millimeters()
        );
    }

    #[test]
    fn lower_parallelism_cuts_area_raises_latency() {
        // The paper's Fig. 7 trade-off.
        let mut c = fc_config();
        c.parallelism = 0;
        let full = evaluate_bank(&c, &fc_bank(), None);
        c.parallelism = 1;
        let serial = evaluate_bank(&c, &fc_bank(), None);
        assert!(serial.area().square_meters() < full.area().square_meters());
        assert!(serial.cycle.latency.seconds() > full.cycle.latency.seconds());
    }

    #[test]
    fn conv_bank_has_many_ops_per_sample() {
        let mut c = Config::vgg16_cnn();
        c.crossbar_size = 128;
        let bank = BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 64,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 56,
                input_w: 56,
            },
            pooling: Some(2),
        };
        let b = evaluate_bank(&c, &bank, Some(3));
        assert_eq!(b.ops_per_sample, 56 * 56);
        assert!(b.sample.latency.seconds() > 1000.0 * b.cycle.latency.seconds());
        // Pooling hardware exists.
        let no_pool_bank = BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 64,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 56,
                input_w: 56,
            },
            pooling: None,
        };
        let np = evaluate_bank(&c, &no_pool_bank, Some(3));
        assert!(b.area().square_meters() > np.area().square_meters());
    }

    #[test]
    fn next_kernel_sizes_output_buffer() {
        let mut c = Config::vgg16_cnn();
        c.crossbar_size = 128;
        let bank = BankDescriptor::Conv {
            shape: ConvShape {
                in_channels: 3,
                out_channels: 64,
                kernel: 3,
                stride: 1,
                padding: 1,
                input_h: 224,
                input_w: 224,
            },
            pooling: None,
        };
        let small = evaluate_bank(&c, &bank, Some(3));
        let big = evaluate_bank(&c, &bank, Some(7));
        assert!(big.area().square_meters() > small.area().square_meters());
    }

    #[test]
    fn single_unit_bank_has_no_adder_tree_latency() {
        let mut c = Config::fully_connected_mlp(&[64, 16, 64]).unwrap();
        c.crossbar_size = 64;
        let bank = BankDescriptor::FullyConnected {
            inputs: 64,
            outputs: 16,
        };
        let b = evaluate_bank(&c, &bank, None);
        assert_eq!(b.unit_count, 1);
        // Cycle latency = unit + neuron + buffer only (no tree stage).
        let overhead = b.cycle.latency.seconds() - b.unit.mvm.latency.seconds();
        assert!(overhead > 0.0);
    }
}
