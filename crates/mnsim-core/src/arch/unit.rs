//! Level-3: the computation unit (paper §III.C, Fig. 1(d)).
//!
//! A unit is: memristor crossbar(s) + address decoders + input peripheral
//! circuit (DACs & transfer gates) + read circuits (ADCs/SAs, MUX routing,
//! optional subtractors for the dual-crossbar signed mapping, shift-add
//! mergers for bit-sliced weights) + a small control counter.

use mnsim_obs::trace;
use mnsim_tech::units::Area;

use crate::config::{Config, InputEncoding, SignedMapping, WeightPolarity};
use crate::modules::converters::{reference_adc, reference_dac};
use crate::modules::crossbar::CrossbarModel;
use crate::modules::decoder::{compute_decoder, memory_decoder};
use crate::modules::digital::{adder, controller, mux, register_bank, shift_add_merge, subtractor};
use crate::perf::ModulePerf;

/// Area breakdown of a unit — used for claims like the paper's "ADCs take
/// about half of the area" (§V.C).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct UnitAreaBreakdown {
    /// Memristor arrays.
    pub crossbar: Area,
    /// Address decoders.
    pub decoder: Area,
    /// DACs and ADCs.
    pub converters: Area,
    /// Digital periphery (MUX, subtractors, mergers, control).
    pub digital: Area,
}

impl UnitAreaBreakdown {
    /// Total unit area.
    pub fn total(&self) -> Area {
        self.crossbar + self.decoder + self.converters + self.digital
    }
}

/// The evaluated performance of one computation unit.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitModelResult {
    /// Inputs (crossbar rows) actually driven.
    pub rows_used: usize,
    /// Logical outputs produced by the unit.
    pub cols_used: usize,
    /// Physical crossbar columns occupied by those outputs.
    pub physical_cols: usize,
    /// Read circuits per crossbar after resolving `Parallelism_Degree`.
    pub parallelism: usize,
    /// Conversion cycles needed to read all used columns.
    pub read_cycles: usize,
    /// Crossbars in the unit (polarity copies × weight bit slices).
    pub crossbar_count: usize,
    /// One full matrix-vector multiplication of the unit.
    pub mvm: ModulePerf,
    /// One memory-style READ access (decoder + crossbar).
    pub read_access: ModulePerf,
    /// One single-cell WRITE.
    pub write_access: ModulePerf,
    /// Area breakdown.
    pub breakdown: UnitAreaBreakdown,
}

/// Evaluates a computation unit holding a `rows_used × cols_used`
/// sub-matrix under `config`.
///
/// `rows_used`/`cols_used` are clamped to the crossbar geometry.
pub fn evaluate_unit(config: &Config, rows_used: usize, cols_used: usize) -> UnitModelResult {
    let _trace_span = trace::span("unit", trace::Level::Unit);
    let cmos = config.cmos.params();
    let size = config.crossbar_size;
    let rows_used = rows_used.clamp(1, size);
    let cols_used = cols_used.clamp(1, size / config.columns_per_output().max(1)).max(1);
    let physical_cols = (cols_used * config.columns_per_output()).min(size);

    let crossbar_count = config.crossbars_per_block();
    let slices = config.weight_slices();

    let xbar = CrossbarModel::new(size, &config.device, config.interconnect);
    let p = config.effective_parallelism(physical_cols);
    let read_cycles = physical_cols.div_ceil(p);

    // --- components -------------------------------------------------------
    let adc = reference_adc(config.cmos, config.precision.output_bits);
    // Input drive: a multi-bit DAC per row, or — for the bit-serial
    // customization (§III.E-2) — a 1-bit transfer-gate driver per row plus
    // a shift-accumulator per read circuit, with the whole analog+convert
    // phase repeated once per input bit.
    let bit_serial = config.input_encoding == InputEncoding::BitSerial;
    let input_passes = if bit_serial {
        config.precision.input_bits as usize
    } else {
        1
    };
    let dac = if bit_serial {
        // Two-transistor binary driver (the DAC is eliminated).
        ModulePerf {
            area: cmos.transistor_area(2),
            latency: cmos.fo4_delay * 2.0,
            dynamic_energy: cmos.gate_energy,
            leakage: cmos.leakage(2),
        }
    } else {
        reference_dac(config.cmos, config.precision.input_bits)
    };
    // Shift-accumulator merging the per-bit partial results.
    let accumulator = if bit_serial {
        adder(&cmos, config.precision.output_bits + config.precision.input_bits).chain(
            &register_bank(&cmos, 1, config.precision.output_bits + config.precision.input_bits),
        )
    } else {
        ModulePerf::ZERO
    };
    // Two decoders per crossbar (row select is computation-oriented, the
    // column-side decoder serves READ/WRITE).
    let row_decoder = compute_decoder(&cmos, size);
    let col_decoder = memory_decoder(&cmos, size);
    let routing = mux(&cmos, read_cycles, config.precision.output_bits);
    let needs_subtractor = matches!(
        (config.weight_polarity, config.signed_mapping),
        (WeightPolarity::Signed, SignedMapping::DualCrossbar)
            | (WeightPolarity::Signed, SignedMapping::SharedCrossbar)
    );
    let sub = subtractor(&cmos, config.precision.output_bits);
    let merger = shift_add_merge(
        &cmos,
        slices,
        config.device.bits_per_cell,
        config.precision.output_bits,
    );
    let counter = controller(&cmos, read_cycles.max(2));

    // --- one matrix-vector multiplication ----------------------------------
    // Latency: drive → crossbar settle → sequential ADC cycles →
    // subtract → slice merge; bit-serial encoding repeats the analog and
    // conversion phases once per input bit with a shift-accumulate each
    // pass. All crossbars of the unit operate in parallel.
    let analog_phase = dac.latency + xbar.settle_latency();
    let conversion_phase = adc.latency * read_cycles as f64;
    let digital_phase = if needs_subtractor {
        sub.latency
    } else {
        mnsim_tech::units::Time::ZERO
    } + merger.latency
        + counter.latency;
    let mvm_latency = (analog_phase + conversion_phase + accumulator.latency)
        * input_passes as f64
        + digital_phase;

    // Energy: DACs (one per used row, shared across the unit's crossbars),
    // crossbar conduction over the whole analog+conversion window, one ADC
    // conversion per used physical column per crossbar, digital merging per
    // produced output.
    let crossbar_energy = xbar.compute_power(rows_used, physical_cols)
        * (analog_phase + conversion_phase)
        * (crossbar_count * input_passes) as f64
        * if bit_serial { 0.5 } else { 1.0 }; // half the bits drive per pass
    let dac_energy = dac.dynamic_energy * (rows_used * input_passes) as f64;
    let adc_energy =
        adc.dynamic_energy * (physical_cols * crossbar_count * input_passes) as f64;
    let accumulator_energy =
        accumulator.dynamic_energy * (cols_used * input_passes) as f64;
    let decoder_energy =
        (row_decoder.dynamic_energy + col_decoder.dynamic_energy) * crossbar_count as f64;
    let sub_energy = if needs_subtractor {
        sub.dynamic_energy * cols_used as f64
    } else {
        mnsim_tech::units::Energy::ZERO
    };
    let merge_energy = merger.dynamic_energy * cols_used as f64;
    let mvm_energy = crossbar_energy
        + dac_energy
        + adc_energy
        + accumulator_energy
        + decoder_energy
        + sub_energy
        + merge_energy
        + counter.dynamic_energy;

    // Trace attribution: the exact critical-path decomposition of the MVM,
    // so per-module time/energy sums reproduce `mvm.latency`/`mvm.
    // dynamic_energy` up to floating-point association.
    if trace::enabled() {
        let passes = input_passes as f64;
        trace::module_perf("dac", (dac.latency * passes).seconds(), dac_energy.joules());
        trace::module_perf(
            "crossbar",
            (xbar.settle_latency() * passes).seconds(),
            crossbar_energy.joules(),
        );
        trace::module_perf(
            "adc",
            (conversion_phase * passes).seconds(),
            adc_energy.joules(),
        );
        trace::module_perf(
            "accumulator",
            (accumulator.latency * passes).seconds(),
            accumulator_energy.joules(),
        );
        trace::module_perf(
            "digital",
            digital_phase.seconds(),
            (decoder_energy + sub_energy + merge_energy + counter.dynamic_energy).joules(),
        );
    }

    // --- area & leakage -----------------------------------------------------
    let breakdown = UnitAreaBreakdown {
        crossbar: xbar.area() * crossbar_count as f64,
        decoder: (row_decoder.area + col_decoder.area) * crossbar_count as f64,
        converters: dac.area * size as f64 + adc.area * (p * crossbar_count) as f64,
        digital: routing.area * (p * crossbar_count) as f64
            + if needs_subtractor {
                sub.area * p as f64
            } else {
                Area::ZERO
            }
            + merger.area * p as f64
            + accumulator.area * p as f64
            + counter.area,
    };
    let leakage = (row_decoder.leakage + col_decoder.leakage) * crossbar_count as f64
        + dac.leakage * size as f64
        + adc.leakage * (p * crossbar_count) as f64
        + routing.leakage * (p * crossbar_count) as f64
        + merger.leakage * p as f64
        + accumulator.leakage * p as f64
        + counter.leakage;

    let mvm = ModulePerf {
        area: breakdown.total(),
        latency: mvm_latency,
        dynamic_energy: mvm_energy,
        leakage,
    };

    // --- memory-mode accesses ------------------------------------------------
    let read_access = ModulePerf {
        area: Area::ZERO,
        latency: col_decoder.latency + xbar.settle_latency() + adc.latency,
        dynamic_energy: col_decoder.dynamic_energy
            + xbar.read_power() * adc.latency
            + adc.dynamic_energy,
        leakage: mnsim_tech::units::Power::ZERO,
    };
    let write_access = ModulePerf {
        area: Area::ZERO,
        latency: col_decoder.latency + config.device.write_latency,
        dynamic_energy: col_decoder.dynamic_energy + xbar.write_energy_per_cell(),
        leakage: mnsim_tech::units::Power::ZERO,
    };

    UnitModelResult {
        rows_used,
        cols_used,
        physical_cols,
        parallelism: p,
        read_cycles,
        crossbar_count,
        mvm,
        read_access,
        write_access,
        breakdown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;

    fn config() -> Config {
        Config::fully_connected_mlp(&[128, 128]).unwrap()
    }

    #[test]
    fn full_parallel_unit_reads_in_one_cycle() {
        let u = evaluate_unit(&config(), 128, 128);
        assert_eq!(u.parallelism, 128);
        assert_eq!(u.read_cycles, 1);
        assert_eq!(u.crossbar_count, 2); // signed dual-crossbar, 1 slice
    }

    #[test]
    fn lower_parallelism_trades_latency_for_area() {
        let mut c = config();
        c.parallelism = 0;
        let full = evaluate_unit(&c, 128, 128);
        c.parallelism = 8;
        let shared = evaluate_unit(&c, 128, 128);
        assert_eq!(shared.read_cycles, 16);
        assert!(shared.mvm.latency.seconds() > full.mvm.latency.seconds());
        assert!(
            shared.breakdown.converters.square_meters()
                < full.breakdown.converters.square_meters()
        );
    }

    #[test]
    fn adc_energy_independent_of_parallelism() {
        // Each column is converted exactly once regardless of sharing; the
        // energy difference comes only from the longer crossbar-on window.
        let mut c = config();
        c.parallelism = 0;
        let full = evaluate_unit(&c, 128, 128);
        c.parallelism = 1;
        let serial = evaluate_unit(&c, 128, 128);
        assert!(serial.mvm.dynamic_energy.joules() > full.mvm.dynamic_energy.joules());
    }

    #[test]
    fn bit_slices_multiply_crossbars() {
        let mut c = config();
        c.precision.weight_bits = 8;
        c.device.bits_per_cell = 4;
        let u = evaluate_unit(&c, 128, 128);
        assert_eq!(u.crossbar_count, 4); // 2 slices × 2 polarity
    }

    #[test]
    fn unsigned_single_crossbar() {
        let mut c = config();
        c.weight_polarity = crate::config::WeightPolarity::Unsigned;
        let u = evaluate_unit(&c, 128, 128);
        assert_eq!(u.crossbar_count, 1);
    }

    #[test]
    fn inputs_clamped_to_geometry() {
        let u = evaluate_unit(&config(), 9999, 9999);
        assert_eq!(u.rows_used, 128);
        assert_eq!(u.cols_used, 128);
    }

    #[test]
    fn read_and_write_access_positive() {
        let u = evaluate_unit(&config(), 128, 128);
        assert!(u.read_access.latency.seconds() > 0.0);
        assert!(u.read_access.dynamic_energy.joules() > 0.0);
        assert!(u.write_access.latency.seconds() > u.read_access.latency.seconds());
    }

    #[test]
    fn compute_dominates_read_energy() {
        // §II.C: computation uses all cells, READ one cell.
        let u = evaluate_unit(&config(), 128, 128);
        assert!(u.mvm.dynamic_energy.joules() > 10.0 * u.read_access.dynamic_energy.joules());
    }

    #[test]
    fn breakdown_total_matches_mvm_area() {
        let u = evaluate_unit(&config(), 128, 128);
        assert!(
            (u.breakdown.total().square_meters() - u.mvm.area.square_meters()).abs()
                < 1e-18
        );
    }

    #[test]
    fn bit_serial_eliminates_dac_area_but_multiplies_latency() {
        let mut c = config();
        c.input_encoding = crate::config::InputEncoding::AnalogDac;
        let dac_based = evaluate_unit(&c, 128, 128);
        c.input_encoding = crate::config::InputEncoding::BitSerial;
        let serial = evaluate_unit(&c, 128, 128);
        // The DACs (per-row converters) disappear from the area...
        assert!(
            serial.breakdown.converters.square_meters()
                < dac_based.breakdown.converters.square_meters()
        );
        // ...at the cost of ≈ input_bits× the compute latency.
        let ratio = serial.mvm.latency.seconds() / dac_based.mvm.latency.seconds();
        assert!(
            ratio > 0.5 * c.precision.input_bits as f64,
            "latency ratio {ratio}"
        );
    }

    #[test]
    fn bit_serial_costs_more_adc_energy() {
        // Every input bit pays a full conversion sweep.
        let mut c = config();
        c.input_encoding = crate::config::InputEncoding::BitSerial;
        let serial = evaluate_unit(&c, 128, 128);
        c.input_encoding = crate::config::InputEncoding::AnalogDac;
        let dac_based = evaluate_unit(&c, 128, 128);
        assert!(serial.mvm.dynamic_energy.joules() > dac_based.mvm.dynamic_energy.joules());
    }
}
