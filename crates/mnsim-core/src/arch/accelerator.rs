//! Level-1: the accelerator (paper §III.A, Fig. 1(b)).
//!
//! The accelerator is the I/O interface modules plus the cascaded
//! computation banks. Aggregation follows the paper's §IV.A rules: areas,
//! energies and leakages add; latency is worst-case; multi-layer
//! accelerators are pipelined, so the throughput-defining "latency per
//! pipeline cycle" is the largest bank cycle (paper §VII.D).

use mnsim_nn::descriptor::BankDescriptor;
use mnsim_obs::trace;
use mnsim_tech::units::{Area, Energy, Power, Time};

use crate::arch::bank::{evaluate_bank, BankModelResult};
use crate::config::Config;
use crate::error::CoreError;
use crate::exec::{self, ExecOptions};
use crate::modules::interface::interface;
use crate::modules::link::{hop_length, interbank_link};
use crate::perf::ModulePerf;

/// The evaluated performance of the whole accelerator.
#[derive(Debug, Clone, PartialEq)]
pub struct AcceleratorModelResult {
    /// Input interface (buffers one full sample).
    pub interface_in: ModulePerf,
    /// Output interface.
    pub interface_out: ModulePerf,
    /// Per-bank evaluations, input side first.
    pub banks: Vec<BankModelResult>,
    /// Inter-bank global links (one per neighbouring bank pair); one
    /// operation = one output word moved to the next bank.
    pub links: Vec<ModulePerf>,
    /// Total layout area.
    pub total_area: Area,
    /// Total leakage power.
    pub total_leakage: Power,
    /// End-to-end latency of one sample (pipeline fill).
    pub sample_latency: Time,
    /// Latency of one pipeline cycle = the largest bank cycle.
    pub pipeline_cycle: Time,
    /// Dynamic energy per processed sample.
    pub energy_per_sample: Energy,
    /// Average power while streaming samples
    /// (`energy/sample ÷ pipeline cycle + leakage`).
    pub average_power: Power,
}

/// Evaluates the accelerator for `config` on the calling thread (the
/// serial path of [`evaluate_accelerator_with`]).
///
/// # Errors
///
/// Returns configuration validation errors ([`CoreError::Config`]).
pub fn evaluate_accelerator(config: &Config) -> Result<AcceleratorModelResult, CoreError> {
    evaluate_accelerator_with(config, &ExecOptions::serial())
}

/// The next bank's convolution kernel, which sizes bank `i`'s output line
/// buffer (paper Eq. 6).
fn next_kernel_of(descriptors: &[BankDescriptor], i: usize) -> Option<usize> {
    descriptors.get(i + 1).and_then(|next| match next {
        BankDescriptor::Conv { shape, .. } => Some(shape.kernel),
        BankDescriptor::FullyConnected { .. } => None,
    })
}

/// Evaluates the accelerator for `config`, spreading independent bank
/// evaluations over the shared [`exec`] worker pool.
///
/// Banks only read the configuration and the (immutable) descriptor list,
/// so they evaluate in any order; the partial results are collected in
/// canonical bank order and every downstream reduction (areas, energies,
/// the pipeline-cycle max) folds that ordered list — the result is
/// **bit-identical** to the serial evaluation for every thread count.
/// Layer trace spans from worker threads are parented onto the caller's
/// innermost span, exactly like fault-trial lanes.
///
/// # Errors
///
/// Returns configuration validation errors ([`CoreError::Config`]).
pub fn evaluate_accelerator_with(
    config: &Config,
    options: &ExecOptions,
) -> Result<AcceleratorModelResult, CoreError> {
    config.validate()?;
    let cmos = config.cmos.params();
    let bits = config.precision.input_bits;

    let interface_in = interface(
        &cmos,
        config.network.input_size(),
        bits,
        config.interface_in,
    );
    let interface_out = interface(
        &cmos,
        config.network.output_size(),
        config.precision.output_bits,
        config.interface_out,
    );

    let descriptors = &config.network.banks;
    let threads = options.resolved_threads().min(descriptors.len().max(1));
    let banks: Vec<BankModelResult> = if threads <= 1 {
        let mut banks = Vec::with_capacity(descriptors.len());
        for (i, bank) in descriptors.iter().enumerate() {
            let _layer_span = trace::span_at("layer", trace::Level::Layer, i as i64);
            banks.push(evaluate_bank(config, bank, next_kernel_of(descriptors, i)));
        }
        banks
    } else {
        let parent = trace::current_span();
        exec::map_slice(descriptors, threads, |i, bank| {
            let _layer_span = trace::span_under("layer", trace::Level::Layer, i as i64, parent);
            evaluate_bank(config, bank, next_kernel_of(descriptors, i))
        })
    };

    // Inter-bank links: one hop between every neighbouring bank pair,
    // sized by the producing bank's output word and the two footprints.
    let mut links = Vec::new();
    for (i, pair) in banks.windows(2).enumerate() {
        let length = hop_length(pair[0].area(), pair[1].area());
        let word_bits = config.precision.output_bits
            * (pair[0].unit.parallelism * pair[0].partition.col_blocks()).max(1) as u32;
        let link = interbank_link(&cmos, config.interconnect, word_bits, length);
        // One link transfer per producing-bank pipeline cycle.
        let transfers = descriptors[i].ops_per_sample();
        links.push(ModulePerf {
            area: link.area,
            latency: link.latency,
            dynamic_energy: link.dynamic_energy * transfers as f64,
            leakage: link.leakage,
        });
    }

    let total_area = interface_in.area
        + interface_out.area
        + banks.iter().map(|b| b.area()).sum::<Area>()
        + links.iter().map(|l| l.area).sum::<Area>();
    let total_leakage = interface_in.leakage
        + interface_out.leakage
        + banks.iter().map(|b| b.leakage()).sum::<Power>()
        + links.iter().map(|l| l.leakage).sum::<Power>();

    let banks_latency: Time = banks.iter().map(|b| b.sample.latency).sum();
    let links_latency: Time = links.iter().map(|l| l.latency).sum();
    let sample_latency =
        interface_in.latency + banks_latency + links_latency + interface_out.latency;

    let pipeline_cycle = banks
        .iter()
        .map(|b| b.cycle.latency)
        .fold(Time::ZERO, Time::max);

    let energy_per_sample = interface_in.dynamic_energy
        + interface_out.dynamic_energy
        + banks.iter().map(|b| b.sample.dynamic_energy).sum::<Energy>()
        + links.iter().map(|l| l.dynamic_energy).sum::<Energy>();

    // Streaming power: one sample completes per pipeline cycle in the
    // steady state, but a sample's energy is spread over its banks. Using
    // the end-to-end latency gives the average power of a single-sample
    // (non-overlapped) run; the paper's Power column uses this definition.
    let average_power = if sample_latency.seconds() > 0.0 {
        energy_per_sample / sample_latency + total_leakage
    } else {
        total_leakage
    };

    Ok(AcceleratorModelResult {
        interface_in,
        interface_out,
        banks,
        links,
        total_area,
        total_leakage,
        sample_latency,
        pipeline_cycle,
        energy_per_sample,
        average_power,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_layer_mlp_structure() {
        let config = Config::fully_connected_mlp(&[128, 128, 128]).unwrap();
        let acc = evaluate_accelerator(&config).unwrap();
        assert_eq!(acc.banks.len(), 2);
        assert!(acc.total_area.square_millimeters() > 0.0);
        assert!(acc.sample_latency.seconds() > 0.0);
        assert!(acc.energy_per_sample.joules() > 0.0);
        assert!(acc.average_power.watts() > 0.0);
    }

    #[test]
    fn pipeline_cycle_is_max_bank_cycle() {
        let config = Config::fully_connected_mlp(&[512, 2048, 64]).unwrap();
        let acc = evaluate_accelerator(&config).unwrap();
        let max_cycle = acc
            .banks
            .iter()
            .map(|b| b.cycle.latency.seconds())
            .fold(0.0f64, f64::max);
        assert_eq!(acc.pipeline_cycle.seconds(), max_cycle);
        assert!(acc.sample_latency.seconds() > max_cycle);
    }

    #[test]
    fn deeper_networks_cost_more() {
        let shallow = Config::fully_connected_mlp(&[256, 256]).unwrap();
        let deep = Config::fully_connected_mlp(&[256, 256, 256, 256]).unwrap();
        let a = evaluate_accelerator(&shallow).unwrap();
        let b = evaluate_accelerator(&deep).unwrap();
        assert!(b.total_area.square_meters() > a.total_area.square_meters());
        assert!(b.energy_per_sample.joules() > a.energy_per_sample.joules());
        assert!(b.sample_latency.seconds() > a.sample_latency.seconds());
    }

    #[test]
    fn invalid_config_rejected() {
        let mut config = Config::fully_connected_mlp(&[128, 128]).unwrap();
        config.crossbar_size = 100;
        assert!(evaluate_accelerator(&config).is_err());
    }

    #[test]
    fn parallel_bank_evaluation_is_bit_identical() {
        for config in [
            Config::fully_connected_mlp(&[512, 2048, 64, 128]).unwrap(),
            Config::vgg16_cnn(),
        ] {
            let serial = evaluate_accelerator_with(&config, &ExecOptions::serial()).unwrap();
            for threads in [2usize, 3, 7, 64] {
                let parallel =
                    evaluate_accelerator_with(&config, &ExecOptions::with_threads(threads))
                        .unwrap();
                // Full struct equality: every bank, link and reduction
                // must match the serial fold bit for bit.
                assert_eq!(serial, parallel, "threads={threads}");
            }
        }
    }

    #[test]
    fn vgg16_evaluates() {
        let acc = evaluate_accelerator(&Config::vgg16_cnn()).unwrap();
        assert_eq!(acc.banks.len(), 16);
        // A 138M-weight network occupies hundreds of mm².
        assert!(acc.total_area.square_millimeters() > 10.0);
        // Conv banks dominate the op counts.
        assert!(acc.banks[0].ops_per_sample > 10_000);
    }
}
