//! Netlist generation: from trained weights to circuit-level netlists
//! (paper §IV.A: "If users still want to perform a circuit-level
//! simulation with specific weight matrices and input vectors, MNSIM can
//! generate the netlist file for circuit-level simulators like SPICE").
//!
//! Weights in `[-1, 1]` map onto memristor conductance levels; with the
//! signed dual-crossbar scheme the positive and negative parts land on two
//! mirrored crossbars whose outputs are subtracted.

use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::netlist::to_netlist;
use mnsim_nn::tensor::Tensor;
use mnsim_tech::units::{Resistance, Voltage};

use crate::config::{Config, WeightPolarity};
use crate::error::CoreError;

/// The crossbar netlist specifications for one weight matrix block.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedCrossbars {
    /// Crossbar carrying the positive weight parts (or all weights for
    /// unsigned polarity).
    pub positive: CrossbarSpec,
    /// Mirrored crossbar carrying the negative parts (signed dual-crossbar
    /// mapping only).
    pub negative: Option<CrossbarSpec>,
}

impl MappedCrossbars {
    /// Exports the mapped crossbars as SPICE netlist text.
    pub fn to_netlists(&self, title: &str) -> Vec<String> {
        let mut out = Vec::new();
        out.push(to_netlist_for(&self.positive, &format!("{title} (positive)")));
        if let Some(neg) = &self.negative {
            out.push(to_netlist_for(neg, &format!("{title} (negative)")));
        }
        out
    }
}

fn to_netlist_for(spec: &CrossbarSpec, title: &str) -> String {
    match spec.build() {
        Ok(built) => to_netlist(built.circuit(), title),
        Err(e) => format!("* netlist generation failed: {e}\n.end\n"),
    }
}

/// Maps one weight matrix (shape `(outputs, inputs)`, values in `[-1, 1]`)
/// and one input vector (values in `[0, 1]`) onto crossbar netlist
/// specifications under `config`.
///
/// The matrix is clamped to a single crossbar block (`crossbar_size ×
/// crossbar_size`); larger matrices should be partitioned with
/// [`crate::mapping::Partition`] first and mapped block by block.
///
/// # Errors
///
/// Returns [`CoreError::Nn`] for shape problems and
/// [`CoreError::InvalidConfig`] if the matrix exceeds one block.
pub fn map_weights(
    config: &Config,
    weights: &Tensor,
    inputs: &[f64],
) -> Result<MappedCrossbars, CoreError> {
    let shape = weights.shape();
    if shape.len() != 2 {
        return Err(CoreError::Nn(mnsim_nn::NnError::ShapeMismatch {
            expected: vec![0, 0],
            actual: shape.to_vec(),
            operation: "map_weights",
        }));
    }
    let (outputs, input_count) = (shape[0], shape[1]);
    if inputs.len() != input_count {
        return Err(CoreError::Nn(mnsim_nn::NnError::ShapeMismatch {
            expected: vec![input_count],
            actual: vec![inputs.len()],
            operation: "map_weights inputs",
        }));
    }
    if outputs > config.crossbar_size || input_count > config.crossbar_size {
        return Err(CoreError::InvalidConfig {
            parameter: "Crossbar_Size",
            reason: format!(
                "matrix {outputs}x{input_count} exceeds one {0}x{0} crossbar block; partition first",
                config.crossbar_size
            ),
        });
    }

    let device = &config.device;
    let resistance_for = |weight: f64| -> Resistance {
        device.resistance_for_level(device.level_for_weight(weight))
    };

    // Crossbar rows = inputs, columns = outputs.
    let rows = input_count;
    let cols = outputs;
    let state_at = |sign: f64| -> Vec<Resistance> {
        let mut states = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for o in 0..cols {
                let w = weights.at2(o, i) * sign;
                states.push(resistance_for(w.max(0.0)));
            }
        }
        states
    };

    let input_voltages = input_drive_voltages(config, inputs);

    let base = CrossbarSpec {
        rows,
        cols,
        wire_resistance: config.interconnect.segment_resistance(),
        sense_resistance: config.sense_resistance,
        states: state_at(1.0),
        iv: device.iv,
        inputs: input_voltages.clone(),
        faults: None,
    };

    let negative = match config.weight_polarity {
        WeightPolarity::Signed => Some(CrossbarSpec {
            states: state_at(-1.0),
            ..base.clone()
        }),
        WeightPolarity::Unsigned => None,
    };

    Ok(MappedCrossbars {
        positive: base,
        negative,
    })
}

/// Converts activation values in `[0, 1]` into word-line drive voltages
/// (`v_read · x`, clamped) — the exact mapping [`map_weights`] applies.
///
/// Useful on its own when one mapped crossbar is re-driven by many input
/// vectors through [`mnsim_circuit::batch::PreparedSystem`]: the states
/// come from a single `map_weights` call and each input only needs its
/// voltage vector.
pub fn input_drive_voltages(config: &Config, inputs: &[f64]) -> Vec<Voltage> {
    inputs
        .iter()
        .map(|&x| Voltage::from_volts(config.device.v_read.volts() * x.clamp(0.0, 1.0)))
        .collect()
}

/// Generates the SPICE netlist text for a weight matrix + input vector.
///
/// # Errors
///
/// Same conditions as [`map_weights`].
pub fn generate_netlist(
    config: &Config,
    weights: &Tensor,
    inputs: &[f64],
    title: &str,
) -> Result<String, CoreError> {
    let mapped = map_weights(config, weights, inputs)?;
    Ok(mapped.to_netlists(title).join("\n"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mnsim_circuit::netlist::from_netlist;
    use mnsim_circuit::solve::{solve_dc, SolveOptions};

    fn config() -> Config {
        let mut c = Config::fully_connected_mlp(&[4, 2]).unwrap();
        c.crossbar_size = 4;
        c
    }

    fn weights() -> Tensor {
        // 2 outputs × 4 inputs
        Tensor::from_vec(&[2, 4], vec![0.5, -0.25, 1.0, 0.0, -1.0, 0.75, 0.1, -0.6]).unwrap()
    }

    #[test]
    fn signed_mapping_produces_two_crossbars() {
        let m = map_weights(&config(), &weights(), &[1.0, 0.5, 0.0, 0.25]).unwrap();
        assert!(m.negative.is_some());
        assert_eq!(m.positive.rows, 4);
        assert_eq!(m.positive.cols, 2);
        // Positive crossbar: w=-1.0 cell must be at the most resistive level.
        let neg = m.negative.unwrap();
        let device = config().device;
        // cell (input 0, output 1) has weight −1.0: negative crossbar holds
        // |−1.0| → R_min; positive crossbar holds 0 → R_max.
        assert_eq!(m.positive.state(0, 1).ohms(), device.r_max.ohms());
        assert_eq!(neg.state(0, 1).ohms(), device.r_min.ohms());
    }

    #[test]
    fn unsigned_mapping_single_crossbar() {
        let mut c = config();
        c.weight_polarity = WeightPolarity::Unsigned;
        let w = Tensor::from_vec(&[2, 4], vec![0.5; 8]).unwrap();
        let m = map_weights(&c, &w, &[0.5; 4]).unwrap();
        assert!(m.negative.is_none());
    }

    #[test]
    fn inputs_scale_read_voltage() {
        let m = map_weights(&config(), &weights(), &[1.0, 0.5, 0.0, 0.25]).unwrap();
        let v = config().device.v_read.volts();
        assert!((m.positive.inputs[0].volts() - v).abs() < 1e-12);
        assert!((m.positive.inputs[1].volts() - 0.5 * v).abs() < 1e-12);
        assert_eq!(m.positive.inputs[2].volts(), 0.0);
    }

    #[test]
    fn netlist_roundtrips_into_solvable_circuit() {
        let text = generate_netlist(&config(), &weights(), &[1.0, 0.5, 0.0, 0.25], "block")
            .unwrap();
        assert!(text.contains("* block (positive)"));
        assert!(text.contains("* block (negative)"));
        // The first netlist (up to its .end) parses and solves.
        let first = text.split(".end").next().unwrap().to_string() + ".end\n";
        let circuit = from_netlist(&first).unwrap();
        let sol = solve_dc(&circuit, &SolveOptions::default()).unwrap();
        assert!(sol.dissipated_power(&circuit).watts() > 0.0);
    }

    #[test]
    fn shape_errors_rejected() {
        let c = config();
        assert!(map_weights(&c, &weights(), &[1.0, 0.5]).is_err());
        let too_big = Tensor::zeros(&[8, 8]);
        assert!(map_weights(&c, &too_big, &[0.0; 8]).is_err());
        let not_2d = Tensor::zeros(&[8]);
        assert!(map_weights(&c, &not_2d, &[0.0; 8]).is_err());
    }
}
