//! Deterministic checkpoint/resume substrate for long campaigns.
//!
//! Fault-Monte-Carlo campaigns ([`crate::fault_sim`]) and design-space
//! explorations ([`crate::dse`]) can run for hours; a cancellation,
//! deadline, or crash at trial 9,847 of 10,000 must not lose the first
//! 9,846. This module holds the pieces those campaign drivers share:
//!
//! * [`CheckpointPolicy`] — *where* to write and *how often*, attached to
//!   [`FaultConfig`](crate::fault_sim::FaultConfig) or passed to the DSE
//!   entry points;
//! * a **versioned, self-describing file format**: plain JSON written
//!   with the same zero-dependency conventions as the observability
//!   snapshots (floats via `{:?}` so they round-trip bit-exactly through
//!   [`mnsim_obs::parse_json`]; `u64` seeds and fingerprints as `"0x…"`
//!   hex strings because JSON numbers lose integers above 2⁵³);
//! * **campaign fingerprints** ([`fnv64`] over a canonical description)
//!   so a checkpoint is only ever resumed into the campaign that wrote
//!   it — a mismatched config, seed, or design space is a hard
//!   [`CoreError::Checkpoint`] error, never silent corruption;
//! * **atomic writes** ([`write_atomic`]): the file is staged to a
//!   sibling `.tmp` and renamed into place, so a crash mid-write leaves
//!   the previous checkpoint intact.
//!
//! Because every trial derives its RNG stream independently (SplitMix64
//! per-trial seeding) and reductions run in canonical index order, a
//! resumed campaign is **bit-identical** to an uninterrupted one — the
//! property the `campaign_resume` integration tests pin down.

use std::fmt::Write as _;
use std::path::Path;

use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_obs::JsonValue;

use crate::error::CoreError;

/// Format version stamped into every checkpoint file. Readers reject
/// other versions outright: checkpoints are short-lived working state,
/// not archives, so there is no cross-version migration.
pub const SCHEMA_VERSION: u32 = 1;

static CHECKPOINT_WRITTEN: obs::Counter = obs::Counter::new("checkpoint.written");
static CHECKPOINT_RESUMED: obs::Counter = obs::Counter::new("checkpoint.resumed");

/// When and where a campaign persists its progress.
///
/// With a policy attached, the campaign writes the checkpoint after every
/// `every_n` newly completed items **and** once more when the run stops —
/// whether it finished, errored, or was interrupted — so the file always
/// reflects the latest completed work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Write the checkpoint after this many newly completed items
    /// (chunk-granular; the final write on exit always happens).
    pub every_n: usize,
    /// Checkpoint file path. The write is atomic (staged via a sibling
    /// `.tmp` file), so the path never holds a torn checkpoint.
    pub path: String,
}

impl CheckpointPolicy {
    /// Checkpoint to `path` with the default cadence (every 64 items).
    pub fn new(path: impl Into<String>) -> Self {
        CheckpointPolicy {
            every_n: 64,
            path: path.into(),
        }
    }

    /// Sets the cadence: write after every `n` newly completed items
    /// (`n` is clamped to at least 1).
    pub fn every(mut self, n: usize) -> Self {
        self.every_n = n.max(1);
        self
    }
}

/// Records a checkpoint write in the observability layer.
pub(crate) fn note_written(completed: usize) {
    CHECKPOINT_WRITTEN.inc();
    trace::instant("checkpoint.written", trace::Level::Run, completed as f64);
}

/// Records a successful resume in the observability layer.
pub(crate) fn note_resumed(completed: usize) {
    CHECKPOINT_RESUMED.inc();
    trace::instant("checkpoint.resumed", trace::Level::Run, completed as f64);
}

/// Writes `contents` to `path` atomically: staged to a sibling
/// `<file_name>.tmp` in the same directory, then renamed over `path`.
///
/// # Errors
///
/// [`CoreError::Checkpoint`] when the staging write or the rename fails.
pub fn write_atomic(path: &str, contents: &str) -> Result<(), CoreError> {
    let target = Path::new(path);
    let file_name = target
        .file_name()
        .and_then(|name| name.to_str())
        .ok_or_else(|| CoreError::Checkpoint {
            path: path.to_string(),
            reason: "path has no file name".to_string(),
        })?;
    let tmp = target.with_file_name(format!("{file_name}.tmp"));
    std::fs::write(&tmp, contents).map_err(|e| CoreError::Checkpoint {
        path: path.to_string(),
        reason: format!("staging write failed: {e}"),
    })?;
    std::fs::rename(&tmp, target).map_err(|e| CoreError::Checkpoint {
        path: path.to_string(),
        reason: format!("rename into place failed: {e}"),
    })
}

/// Reads and parses a checkpoint file.
///
/// # Errors
///
/// [`CoreError::Checkpoint`] when the file cannot be read or is not
/// valid JSON.
pub fn read_json(path: &str) -> Result<JsonValue, CoreError> {
    let text = std::fs::read_to_string(path).map_err(|e| CoreError::Checkpoint {
        path: path.to_string(),
        reason: format!("read failed: {e}"),
    })?;
    obs::parse_json(&text).map_err(|e| CoreError::Checkpoint {
        path: path.to_string(),
        reason: format!("parse failed: {e}"),
    })
}

/// Checks the `schema` and `kind` headers of a parsed checkpoint.
///
/// # Errors
///
/// [`CoreError::Checkpoint`] when either header is missing or does not
/// match what the resuming campaign expects.
pub fn check_header(path: &str, value: &JsonValue, kind: &str) -> Result<(), CoreError> {
    let schema = value.get("schema").and_then(JsonValue::as_f64);
    if schema != Some(f64::from(SCHEMA_VERSION)) {
        return Err(CoreError::Checkpoint {
            path: path.to_string(),
            reason: format!(
                "unsupported schema version {:?} (this build writes {SCHEMA_VERSION})",
                schema
            ),
        });
    }
    let found = value.get("kind").and_then(JsonValue::as_str);
    if found != Some(kind) {
        return Err(CoreError::Checkpoint {
            path: path.to_string(),
            reason: format!("kind {:?} is not a {kind} checkpoint", found),
        });
    }
    Ok(())
}

/// 64-bit FNV-1a over `bytes` — the campaign fingerprint hash. Stable
/// across platforms and builds (it is pure arithmetic on the canonical
/// description string), unlike `std`'s unstable-by-design hasher.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Formats a `u64` as a `"0x…"` hex string — the checkpoint encoding for
/// seeds and fingerprints, which would lose precision as JSON numbers.
pub fn hex_u64(value: u64) -> String {
    format!("0x{value:016x}")
}

/// Parses the [`hex_u64`] encoding back.
pub fn parse_hex_u64(text: &str) -> Option<u64> {
    let digits = text.strip_prefix("0x")?;
    u64::from_str_radix(digits, 16).ok()
}

/// Extracts a required [`hex_u64`]-encoded field from a checkpoint
/// object.
///
/// # Errors
///
/// [`CoreError::Checkpoint`] when the field is missing or malformed.
pub fn require_hex_u64(path: &str, value: &JsonValue, field: &str) -> Result<u64, CoreError> {
    value
        .get(field)
        .and_then(JsonValue::as_str)
        .and_then(parse_hex_u64)
        .ok_or_else(|| CoreError::Checkpoint {
            path: path.to_string(),
            reason: format!("missing or malformed `{field}` field"),
        })
}

/// Appends `value` as a JSON string literal (with escapes) to `out`.
pub(crate) fn push_json_string(out: &mut String, value: &str) {
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `value` as a JSON number (`{:?}` round-trips f64 exactly;
/// non-finite values become `null`).
pub(crate) fn push_json_f64(out: &mut String, value: f64) {
    if value.is_finite() {
        let _ = write!(out, "{value:?}");
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_builders() {
        let policy = CheckpointPolicy::new("/tmp/ck.json");
        assert_eq!(policy.every_n, 64);
        assert_eq!(policy.path, "/tmp/ck.json");
        assert_eq!(policy.clone().every(3).every_n, 3);
        assert_eq!(policy.every(0).every_n, 1, "cadence clamps to 1");
    }

    #[test]
    fn hex_u64_round_trips() {
        for value in [0u64, 1, 0x00C0_FFEE, u64::MAX, 0x9E37_79B9_7F4A_7C15] {
            assert_eq!(parse_hex_u64(&hex_u64(value)), Some(value));
        }
        assert_eq!(parse_hex_u64("123"), None);
        assert_eq!(parse_hex_u64("0xzz"), None);
    }

    #[test]
    fn fnv64_is_stable_and_sensitive() {
        // Pinned value: the fingerprint must never change across builds,
        // or every existing checkpoint would be rejected.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"trials=8"), fnv64(b"trials=9"));
    }

    #[test]
    fn atomic_write_then_read_round_trips() {
        let dir = std::env::temp_dir().join("mnsim_checkpoint_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ck.json");
        let path = path.to_str().expect("utf-8 path");

        let mut body = String::from("{\"schema\": 1, \"kind\": \"fault_mc\", \"seed\": ");
        push_json_string(&mut body, &hex_u64(0x00C0_FFEE));
        body.push('}');
        write_atomic(path, &body).expect("write");

        let value = read_json(path).expect("read");
        check_header(path, &value, "fault_mc").expect("header");
        assert_eq!(require_hex_u64(path, &value, "seed").expect("seed"), 0x00C0_FFEE);
        assert!(check_header(path, &value, "dse").is_err());
        assert!(require_hex_u64(path, &value, "missing").is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn json_helpers_escape_and_round_trip_floats() {
        let mut out = String::new();
        push_json_string(&mut out, "a\"b\\c\nd");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\"");

        for v in [0.0, -1.5, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300] {
            let mut out = String::new();
            push_json_f64(&mut out, v);
            let parsed = obs::parse_json(&out).expect("parses");
            assert_eq!(parsed.as_f64().map(f64::to_bits), Some(v.to_bits()), "{v}");
        }
        let mut out = String::new();
        push_json_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn missing_file_and_bad_json_are_typed_errors() {
        match read_json("/nonexistent/dir/ck.json") {
            Err(CoreError::Checkpoint { path, .. }) => {
                assert_eq!(path, "/nonexistent/dir/ck.json");
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
    }
}
