//! Memory-mode (NVSim-style) evaluation of the crossbar fabric.
//!
//! MNSIM is designed to "cooperate with other simulators" — NVSim in
//! particular (paper §III.E-4): the same crossbars that compute can serve
//! as a non-volatile memory macro, with the *memory-oriented* decoder of
//! Fig. 4(a) selecting one cell at a time (paper §II.C). This module
//! evaluates the fabric in that mode, giving the NVSim-comparable numbers
//! (capacity, random-access read/write latency and energy, bandwidth) so
//! results can flow in either direction between the two tools.

use mnsim_tech::units::{Area, Energy, Time};

use crate::config::Config;
use crate::error::CoreError;
use crate::modules::converters::reference_adc;
use crate::modules::crossbar::CrossbarModel;
use crate::modules::decoder::memory_decoder;

/// The NVSim-style evaluation of the fabric as a memory macro.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModeReport {
    /// Usable capacity in bits (cells × bits per cell).
    pub capacity_bits: u64,
    /// Macro area (arrays + decoders + read circuits).
    pub area: Area,
    /// Random-access read latency of one cell.
    pub read_latency: Time,
    /// Random-access write latency of one cell.
    pub write_latency: Time,
    /// Read energy per bit.
    pub read_energy_per_bit: Energy,
    /// Write energy per bit.
    pub write_energy_per_bit: Energy,
    /// Peak streaming read bandwidth in bits/s (one cell per array per
    /// access, all arrays in parallel).
    pub read_bandwidth_bits_per_s: f64,
}

impl MemoryModeReport {
    /// Area efficiency in bits per square micrometre.
    pub fn bits_per_um2(&self) -> f64 {
        self.capacity_bits as f64 / self.area.square_micrometers()
    }
}

/// Evaluates `config`'s crossbar fabric as a memory macro built from
/// `arrays` crossbars of `config.crossbar_size`.
///
/// # Errors
///
/// Returns configuration validation errors; rejects zero arrays.
pub fn evaluate_memory_mode(config: &Config, arrays: usize) -> Result<MemoryModeReport, CoreError> {
    config.validate()?;
    if arrays == 0 {
        return Err(CoreError::InvalidConfig {
            parameter: "arrays",
            reason: "a memory macro needs at least one array".into(),
        });
    }
    let cmos = config.cmos.params();
    let size = config.crossbar_size;
    let cells_per_array = (size * size) as u64;
    let capacity_bits =
        cells_per_array * arrays as u64 * u64::from(config.device.bits_per_cell);

    let xbar = CrossbarModel::new(size, &config.device, config.interconnect);
    let decoder = memory_decoder(&cmos, size);
    // Multi-level read needs the full-precision sensing circuit.
    let adc = reference_adc(config.cmos, config.device.bits_per_cell);

    let area = (xbar.area() + decoder.area * 2.0 + adc.area) * arrays as f64;

    let read_latency = decoder.latency + xbar.settle_latency() + adc.latency;
    let write_latency = decoder.latency + config.device.write_latency;

    let bits = f64::from(config.device.bits_per_cell);
    let read_energy_per_bit = (decoder.dynamic_energy
        + xbar.read_power() * adc.latency
        + adc.dynamic_energy)
        / bits;
    let write_energy_per_bit =
        (decoder.dynamic_energy + xbar.write_energy_per_cell()) / bits;

    let read_bandwidth_bits_per_s =
        arrays as f64 * bits / read_latency.seconds();

    Ok(MemoryModeReport {
        capacity_bits,
        area,
        read_latency,
        write_latency,
        read_energy_per_bit,
        write_energy_per_bit,
        read_bandwidth_bits_per_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> Config {
        Config::fully_connected_mlp(&[128, 128]).unwrap()
    }

    #[test]
    fn capacity_counts_multilevel_cells() {
        let report = evaluate_memory_mode(&config(), 4).unwrap();
        // 4 × 128×128 cells × 7 bits
        assert_eq!(report.capacity_bits, 4 * 128 * 128 * 7);
    }

    #[test]
    fn writes_slower_and_hungrier_than_reads() {
        let report = evaluate_memory_mode(&config(), 1).unwrap();
        assert!(report.write_latency.seconds() > report.read_latency.seconds());
        assert!(
            report.write_energy_per_bit.joules() > report.read_energy_per_bit.joules(),
            "write {} vs read {}",
            report.write_energy_per_bit.joules(),
            report.read_energy_per_bit.joules()
        );
    }

    #[test]
    fn read_latency_in_nvm_ballpark() {
        // The paper quotes 10–100 ns NVM read latencies (§V.C); our read
        // path (decoder + settle + multilevel sense) must land in the same
        // decade.
        let report = evaluate_memory_mode(&config(), 1).unwrap();
        let ns = report.read_latency.nanoseconds();
        assert!((1.0..=200.0).contains(&ns), "read latency {ns} ns");
    }

    #[test]
    fn bandwidth_scales_with_arrays() {
        let one = evaluate_memory_mode(&config(), 1).unwrap();
        let eight = evaluate_memory_mode(&config(), 8).unwrap();
        assert!(
            (eight.read_bandwidth_bits_per_s / one.read_bandwidth_bits_per_s - 8.0).abs()
                < 1e-9
        );
        assert!(eight.area.square_meters() > one.area.square_meters());
    }

    #[test]
    fn density_is_positive_and_zero_arrays_rejected() {
        let report = evaluate_memory_mode(&config(), 2).unwrap();
        assert!(report.bits_per_um2() > 0.0);
        assert!(evaluate_memory_mode(&config(), 0).is_err());
    }
}
