//! Model-vs-circuit validation harness (paper §VII.A/B, Tables II & III).
//!
//! The paper validates MNSIM's behavior-level models against SPICE; our
//! circuit-level baseline is `mnsim-circuit`'s non-linear DC solver over
//! the identical resistor-network topology. The harness reports:
//!
//! * **power validation** — average computation power and memory-READ
//!   power of random weight matrices, model vs circuit (Table II rows),
//! * **accuracy validation** — model-predicted average output deviation vs
//!   the circuit-measured deviation (Table II last row),
//! * **speed-up measurement** — wall-clock circuit solve vs behavior-level
//!   evaluation over crossbar sizes (Table III).
//!
//! The paper's latency row comes from SPICE transient runs; our substrate
//! is a DC solver, so latency is validated against the analytic Elmore
//! settling of the same netlist (substitution documented in `DESIGN.md`).

use std::time::Instant;

use mnsim_circuit::batch::{BatchOptions, PreparedSystem};
use mnsim_circuit::crossbar::CrossbarSpec;
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_nn::data::{random_input_vector, random_weight_matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::accuracy::{AccuracyModel, Case};
use crate::config::Config;
use crate::error::CoreError;
use crate::exec::{self, ExecOptions};
use crate::modules::crossbar::CrossbarModel;
use crate::netlist_gen::{input_drive_voltages, map_weights};

/// One model-vs-circuit comparison row (a Table II line).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationRow {
    /// Metric name.
    pub metric: String,
    /// MNSIM behavior-level estimate.
    pub mnsim: f64,
    /// Circuit-level measurement.
    pub circuit: f64,
    /// Unit label.
    pub unit: &'static str,
}

impl ValidationRow {
    /// Signed relative error of the model against the circuit.
    pub fn relative_error(&self) -> f64 {
        (self.mnsim - self.circuit) / self.circuit
    }
}

/// Validates computation power, read power and average relative accuracy
/// for `config`'s first bank geometry over `matrices` random weight
/// samples × `inputs_per_matrix` random input vectors.
///
/// # Errors
///
/// Propagates circuit construction/solver failures.
pub fn validate_against_circuit(
    config: &Config,
    matrices: usize,
    inputs_per_matrix: usize,
    seed: u64,
) -> Result<Vec<ValidationRow>, CoreError> {
    validate_against_circuit_with(config, matrices, inputs_per_matrix, seed, &ExecOptions::serial())
}

/// The per-matrix circuit measurement of the power/accuracy validation:
/// solved power and deviation sums over that matrix's input vectors.
struct MatrixPartial {
    power_sum: f64,
    deviation_sum: f64,
    samples: usize,
}

/// [`validate_against_circuit`] on the shared [`exec`] worker pool.
///
/// Each random weight matrix is an independent circuit study (its own
/// prepared system and warm-started read sequence), so matrices spread
/// over `options.threads` workers. All random draws happen up front on
/// the calling thread in the historical order — the RNG stream, and
/// therefore every sampled circuit, is untouched by the thread count —
/// and per-matrix partial sums are reduced in matrix order, so the rows
/// are bit-identical for every thread count.
///
/// # Errors
///
/// Propagates circuit construction/solver failures.
pub fn validate_against_circuit_with(
    config: &Config,
    matrices: usize,
    inputs_per_matrix: usize,
    seed: u64,
    options: &ExecOptions,
) -> Result<Vec<ValidationRow>, CoreError> {
    let mut rng = StdRng::seed_from_u64(seed);
    let bank = &config.network.banks[0];
    let rows = bank.matrix_rows().min(config.crossbar_size);
    let cols = bank.matrix_cols().min(config.crossbar_size);

    let mut block_config = config.clone();
    // map_weights requires the block to fit one crossbar.
    block_config.crossbar_size = config.crossbar_size;

    // Serial pre-draw, interleaved exactly as the historical loop drew
    // them (weights for matrix i, then its inputs, then matrix i+1 …).
    let studies: Vec<(mnsim_nn::tensor::Tensor, Vec<mnsim_nn::tensor::Tensor>)> = (0..matrices)
        .map(|_| {
            let weights = random_weight_matrix(cols, rows, &mut rng);
            let inputs = (0..inputs_per_matrix)
                .map(|_| random_input_vector(rows, &mut rng))
                .collect();
            (weights, inputs)
        })
        .collect();

    let partials: Vec<MatrixPartial> =
        exec::try_map_slice(&studies, options.threads, |_, (weights, input_vectors)| {
            // The conductance map depends only on the weights, so map/build
            // once per matrix and re-drive the sources per input vector
            // through one prepared system (factorization cache + warm start).
            let mapped = map_weights(&block_config, weights, &vec![0.0; rows])?;
            let built = mapped.positive.build()?;
            let mut prepared = PreparedSystem::build(built.circuit(), BatchOptions::default())?;
            let mut partial = MatrixPartial {
                power_sum: 0.0,
                deviation_sum: 0.0,
                samples: 0,
            };
            for inputs in input_vectors {
                let drive = input_drive_voltages(&block_config, inputs.data());
                let rhs = built.input_rhs(&drive)?;
                let solution = prepared.solve(built.circuit(), &rhs)?;
                partial.power_sum += solution.dissipated_power(built.circuit()).watts();

                // Output deviation against the ideal (wire-free, linear)
                // Eq.-2 result, averaged over columns.
                let ideal = mapped.positive.ideal_output_voltages_for(&drive);
                let actual = built.output_voltages(&solution);
                let mut dev = 0.0;
                let mut counted = 0usize;
                for (i, a) in ideal.iter().zip(&actual) {
                    if i.volts() > 1e-9 {
                        dev += ((i.volts() - a.volts()) / i.volts()).abs();
                        counted += 1;
                    }
                }
                if counted > 0 {
                    partial.deviation_sum += dev / counted as f64;
                }
                partial.samples += 1;
            }
            Ok::<_, CoreError>(partial)
        })?;

    // Matrix-order fold of the partials: the grouping is fixed by the
    // matrix boundaries, not the thread count.
    let mut circuit_power = 0.0;
    let mut circuit_deviation = 0.0;
    let mut samples = 0usize;
    for partial in &partials {
        circuit_power += partial.power_sum;
        circuit_deviation += partial.deviation_sum;
        samples += partial.samples;
    }
    let circuit_power = circuit_power / samples as f64;
    let circuit_deviation = circuit_deviation / samples as f64;

    // Circuit computation power under the model's *own* average-case
    // assumption (every cell at the harmonic-mean resistance, every input
    // driven): this isolates the topology effects (wire drops) from the
    // weight-distribution assumption. The activity factor 0.5 of the model
    // corresponds to inputs at v_read/√2 RMS; drive the uniform circuit at
    // that amplitude for a like-for-like energy comparison.
    let rms_input = mnsim_tech::units::Voltage::from_volts(
        config.device.v_read.volts() / std::f64::consts::SQRT_2,
    );
    let uniform = CrossbarSpec::uniform(
        rows,
        cols,
        config.device.harmonic_mean_resistance(),
        config.interconnect.segment_resistance(),
        config.sense_resistance,
        rms_input,
    );
    let built_uniform = uniform.build()?;
    let uniform_solution = solve_dc(built_uniform.circuit(), &SolveOptions::default())?;
    let circuit_avg_power = uniform_solution
        .dissipated_power(built_uniform.circuit())
        .watts();

    // --- behavior-level estimates ------------------------------------------
    let model = CrossbarModel::new(config.crossbar_size, &config.device, config.interconnect);
    let mnsim_power = model.compute_power(rows, cols).watts();
    let mnsim_read_power = model.read_power().watts();

    // Circuit read power: a single driven cell with its sense resistor.
    let single = CrossbarSpec::uniform(
        1,
        1,
        config.device.harmonic_mean_resistance(),
        config.interconnect.segment_resistance(),
        config.sense_resistance,
        config.device.v_read,
    );
    let built = single.build()?;
    let solution = solve_dc(built.circuit(), &SolveOptions::default())?;
    let circuit_read_power = solution.dissipated_power(built.circuit()).watts();

    // Accuracy: calibrate the model against the circuit first (the
    // paper's Fig.-5 fit precedes its Table-II validation), then predict
    // the average case.
    let fit_sizes: Vec<usize> = [rows / 4, rows / 2, rows]
        .into_iter()
        .filter(|&s| s >= 2)
        .collect();
    let fitted = crate::accuracy::fit_wire_coefficient(
        &config.device,
        config.interconnect,
        config.sense_resistance,
        &fit_sizes,
    )?;
    let accuracy_model = fitted.model(config.sense_resistance);
    let mnsim_deviation = accuracy_model.error_rate(
        rows,
        cols,
        config.interconnect,
        &config.device,
        Case::Average,
    );

    // Latency: behavior model vs a backward-Euler transient of the real
    // RC mesh (our substitute for the paper's SPICE transient runs). A
    // 32×32 mesh keeps the validation interactive; settle time scales as
    // size² in both the model and the mesh, so the comparison transfers.
    let latency_size = config.crossbar_size.min(32);
    let latency_model =
        CrossbarModel::new(latency_size, &config.device, config.interconnect);
    let mnsim_latency = latency_model.settle_latency().nanoseconds();
    let circuit_latency =
        measure_transient_settle(config, latency_size)?.nanoseconds();

    Ok(vec![
        ValidationRow {
            metric: "computation power (avg-case assumption)".into(),
            mnsim: mnsim_power * 1e3,
            circuit: circuit_avg_power * 1e3,
            unit: "mW",
        },
        ValidationRow {
            metric: "computation power (random weights)".into(),
            mnsim: mnsim_power * 1e3,
            circuit: circuit_power * 1e3,
            unit: "mW",
        },
        ValidationRow {
            metric: "read power (single cell)".into(),
            mnsim: mnsim_read_power * 1e3,
            circuit: circuit_read_power * 1e3,
            unit: "mW",
        },
        ValidationRow {
            metric: "crossbar settle latency".into(),
            mnsim: mnsim_latency,
            circuit: circuit_latency,
            unit: "ns",
        },
        ValidationRow {
            metric: "average relative accuracy".into(),
            mnsim: (1.0 - mnsim_deviation) * 100.0,
            circuit: (1.0 - circuit_deviation) * 100.0,
            unit: "%",
        },
    ])
}

/// Measures the worst-column settle time of a `size × size` crossbar RC
/// mesh with the backward-Euler transient solver (2 % settling band).
///
/// # Errors
///
/// Propagates circuit failures; reports a settle failure as
/// [`CoreError::InvalidConfig`].
pub fn measure_transient_settle(
    config: &Config,
    size: usize,
) -> Result<mnsim_tech::units::Time, CoreError> {
    use mnsim_circuit::transient::{solve_transient, TransientOptions};

    let spec = CrossbarSpec::uniform(
        size,
        size,
        config.device.harmonic_mean_resistance(),
        config.interconnect.segment_resistance(),
        config.sense_resistance,
        config.device.v_read,
    );
    let mut xbar = spec.build()?;
    let node_cap = config.interconnect.segment_capacitance()
        + mnsim_tech::units::Capacitance::from_femtofarads(1.0);
    xbar.add_node_capacitance(node_cap)?;

    // Simulate for 4× the model's Elmore prediction so the waveform
    // settles inside the window.
    let model = CrossbarModel::new(size, &config.device, config.interconnect);
    let window = model.settle_latency() * 4.0;
    let options = TransientOptions::step_response(window, 400);
    let result = solve_transient(xbar.circuit(), &options)?;
    let worst = xbar.output_node(size - 1);
    result
        .settle_time(worst, 0.02)
        .ok_or_else(|| CoreError::InvalidConfig {
            parameter: "transient window",
            reason: format!("crossbar output did not settle within {window}"),
        })
}

/// One Table III row: circuit-vs-model simulation time for one crossbar
/// size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpeedupRow {
    /// Crossbar size.
    pub size: usize,
    /// Circuit-level solve time in seconds.
    pub circuit_seconds: f64,
    /// Behavior-level evaluation time in seconds.
    pub mnsim_seconds: f64,
}

impl SpeedupRow {
    /// The speed-up factor.
    pub fn speedup(&self) -> f64 {
        self.circuit_seconds / self.mnsim_seconds
    }
}

/// Measures the Table III speed-up over the given crossbar sizes: a full
/// non-linear circuit solve of the worst-case crossbar versus the
/// behavior-level evaluation (performance + accuracy models).
///
/// # Errors
///
/// Propagates circuit failures.
pub fn measure_speedup(config: &Config, sizes: &[usize]) -> Result<Vec<SpeedupRow>, CoreError> {
    let mut rows = Vec::with_capacity(sizes.len());
    for &size in sizes {
        let mut spec = CrossbarSpec::uniform(
            size,
            size,
            config.device.r_min,
            config.interconnect.segment_resistance(),
            config.sense_resistance,
            config.device.v_read,
        );
        spec.iv = config.device.iv;
        let built = spec.build()?;
        let start = Instant::now();
        let _ = solve_dc(built.circuit(), &SolveOptions::default())?;
        let circuit_seconds = start.elapsed().as_secs_f64();

        let start = Instant::now();
        // The behavior-level "simulation of a single crossbar": the
        // performance models plus the accuracy estimate.
        let model = CrossbarModel::new(size, &config.device, config.interconnect);
        let accuracy = AccuracyModel::from_config(config);
        let mut sink = 0.0;
        sink += model.area().square_meters();
        sink += model.compute_power(size, size).watts();
        sink += model.settle_latency().seconds();
        sink += accuracy.error_rate(size, size, config.interconnect, &config.device, Case::Worst);
        sink +=
            accuracy.error_rate(size, size, config.interconnect, &config.device, Case::Average);
        std::hint::black_box(sink);
        let mnsim_seconds = start.elapsed().as_secs_f64().max(1e-9);

        rows.push(SpeedupRow {
            size,
            circuit_seconds,
            mnsim_seconds,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rows_are_close() {
        // Small geometry keeps the test fast; the model must land within
        // the paper's ±10 % band for power and a few percent for accuracy.
        let mut config = Config::fully_connected_mlp(&[32, 32]).unwrap();
        config.crossbar_size = 32;
        let rows = validate_against_circuit(&config, 2, 3, 7).unwrap();
        assert_eq!(rows.len(), 5);
        let read = &rows[2];
        assert!(
            read.relative_error().abs() < 0.10,
            "read power off by {:.1} %",
            read.relative_error() * 100.0
        );
        let acc = &rows[4];
        assert!(
            (acc.mnsim - acc.circuit).abs() < 15.0,
            "accuracy gap: {} vs {}",
            acc.mnsim,
            acc.circuit
        );
    }

    #[test]
    fn parallel_validation_is_bit_identical() {
        let mut config = Config::fully_connected_mlp(&[32, 32]).unwrap();
        config.crossbar_size = 32;
        let serial =
            validate_against_circuit_with(&config, 3, 2, 7, &ExecOptions::serial()).unwrap();
        for threads in [0usize, 2, 5] {
            let parallel = validate_against_circuit_with(
                &config,
                3,
                2,
                7,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn speedup_exceeds_two_orders_for_modest_sizes() {
        let config = Config::fully_connected_mlp(&[64, 64]).unwrap();
        let rows = measure_speedup(&config, &[32]).unwrap();
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].speedup() > 100.0,
            "speed-up only {}×",
            rows[0].speedup()
        );
    }
}
