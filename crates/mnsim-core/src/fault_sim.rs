//! Fault-injection Monte-Carlo over the simulation pipeline.
//!
//! [`simulate_with_faults_with`] extends the behavior-level flow of
//! [`simulate`](crate::simulate::simulate) with hard-defect modeling: it
//! draws seeded [`FaultMap`]s, applies MNSIM's graceful-degradation story
//! (spare-row remapping, bank retirement past a defect threshold), pushes
//! each surviving map through *both* the circuit path (a representative
//! crossbar solved with the [`solve_robust`] recovery ladder) and the
//! behavior path (the same map mirrored onto weights by
//! `mnsim-nn::fault`), and attaches the resulting yield, recovery, and
//! accuracy-degradation statistics to the [`Report`].
//!
//! Everything is deterministic: the same `(config, fault_config)` pair
//! produces a bit-identical [`FaultSummary`], so regression baselines and
//! replayed defect maps stay meaningful.

use mnsim_circuit::batch::{prepare_or_reuse, BatchOptions, PreparedSystem, Rhs};
use mnsim_circuit::crossbar::{CrossbarCircuit, CrossbarSpec};
use mnsim_circuit::mna::{Circuit, DcSolution};
use mnsim_circuit::recovery::{kcl_residual, solve_robust, RobustOptions};
use mnsim_circuit::solve::{solve_dc, SolveOptions};
use mnsim_obs as obs;
use mnsim_obs::trace;
use mnsim_nn::fault::weight_damage_levels;
use mnsim_nn::quantize::Quantizer;
use mnsim_nn::tensor::Tensor;
use mnsim_tech::fault::{FaultMap, FaultRates};
use mnsim_tech::units::{Resistance, Voltage};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::cell::RefCell;
use std::fmt::Write as _;

use mnsim_obs::JsonValue;

use crate::checkpoint::{self, CheckpointPolicy};
use crate::config::Config;
use crate::error::{ConfigError, CoreError};
use crate::exec::{self, ExecError, ExecOptions, Interrupt, RunControl};
use crate::simulate::{simulate_with, Report};

static FAULT_CAMPAIGNS: obs::Counter = obs::Counter::new("core.fault.campaigns");
static FAULT_TRIALS: obs::Counter = obs::Counter::new("core.fault.trials");
static FAULT_RETIRED: obs::Counter = obs::Counter::new("core.fault.retired_trials");
static CAMPAIGN_SPAN: obs::Span = obs::Span::new("core.fault.campaign");
static TRIAL_SPAN: obs::Span = obs::Span::new("core.fault.trial");

/// Side length cap of the representative crossbar solved at circuit level.
///
/// The degradation statistics only need a representative array — solving the
/// full `crossbar_size` (up to 1024²) per Monte-Carlo trial would defeat the
/// behavior-level speed advantage the paper exists to demonstrate.
const REPRESENTATIVE_LIMIT: usize = 16;

/// Fault-injection campaign parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-kind defect probabilities.
    pub rates: FaultRates,
    /// Number of Monte-Carlo fault maps to draw.
    pub trials: usize,
    /// Master seed; each trial derives its own sub-seed from it.
    pub seed: u64,
    /// Spare rows available per crossbar for defect remapping.
    pub spare_rows: usize,
    /// Defective-cell fraction (after spare-row repair) beyond which the
    /// bank is retired instead of operated degraded.
    pub retire_threshold: f64,
    /// Input vectors read per surviving trial (≥ 1). The first read uses
    /// the campaign's primary activations through the recovery ladder;
    /// extra reads are solved as a batch over one
    /// [`PreparedSystem`] per faulty array, reusing its factorization and
    /// warm-started CG. The default of `1` reproduces the single-read
    /// campaign bit for bit.
    pub inputs_per_trial: usize,
    /// Checkpoint policy: when set, the campaign persists its completed
    /// trials to [`CheckpointPolicy::path`] every
    /// [`CheckpointPolicy::every_n`] trials and once more when the run
    /// stops, and **resumes** from that file if it already exists (the
    /// file must have been written by the same campaign — config, rates,
    /// seed, and trial count are fingerprinted). A resumed campaign is
    /// bit-identical to an uninterrupted one.
    pub checkpoint: Option<CheckpointPolicy>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            rates: FaultRates::stuck_at(0.01),
            trials: 8,
            seed: 0x00C0_FFEE,
            spare_rows: 2,
            retire_threshold: 0.25,
            inputs_per_trial: 1,
            checkpoint: None,
        }
    }
}

impl FaultConfig {
    /// Validates the campaign parameters.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::Config`] listing **every** invalid field as a
    /// typed [`ConfigError`] (`trials == 0`, an out-of-range retirement
    /// threshold, zero reads per trial, a degenerate checkpoint path),
    /// and propagates [`FaultRates::validate`] failures as
    /// [`CoreError::Tech`].
    pub fn validate(&self) -> Result<(), CoreError> {
        let mut errors = Vec::new();
        if self.trials == 0 {
            errors.push(ConfigError {
                field_path: "FaultConfig.trials".into(),
                reason: "a campaign of zero Monte-Carlo trials would produce a degenerate \
                         all-zero summary"
                    .into(),
                allowed: ">= 1".into(),
            });
        }
        if !(0.0..=1.0).contains(&self.retire_threshold) {
            errors.push(ConfigError {
                field_path: "FaultConfig.retire_threshold".into(),
                reason: format!("{} is not a fraction", self.retire_threshold),
                allowed: "0.0..=1.0".into(),
            });
        }
        if self.inputs_per_trial == 0 {
            errors.push(ConfigError {
                field_path: "FaultConfig.inputs_per_trial".into(),
                reason: "each trial needs at least one read vector".into(),
                allowed: ">= 1".into(),
            });
        }
        if let Some(policy) = &self.checkpoint {
            if policy.path.is_empty() {
                errors.push(ConfigError {
                    field_path: "FaultConfig.checkpoint.path".into(),
                    reason: "checkpoint path is empty".into(),
                    allowed: "a writable file path".into(),
                });
            }
        }
        if !errors.is_empty() {
            return Err(CoreError::Config { errors });
        }
        self.rates.validate()?;
        Ok(())
    }
}

/// Aggregate outcome of a fault-injection campaign, attached to a
/// [`Report`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSummary {
    /// Monte-Carlo trials run.
    pub trials: usize,
    /// Fraction of trials in which the array stayed in service after
    /// spare-row repair (defect fraction ≤ retirement threshold).
    pub yield_fraction: f64,
    /// Trials in which the array was retired.
    pub retired_trials: usize,
    /// Mean spare rows consumed per trial by defect remapping.
    pub mean_spare_rows_used: f64,
    /// Circuit-level robust solves performed.
    pub solves: usize,
    /// Solves in which the base solver failed and a fallback rung answered.
    pub fallback_solves: usize,
    /// Worst Kirchhoff current-law residual of any accepted solution (A).
    pub worst_kcl_residual: f64,
    /// Mean per-column digital deviation of surviving arrays, in output
    /// quantization levels.
    pub mean_deviation_levels: f64,
    /// 95th-percentile per-column digital deviation, in output levels.
    pub p95_deviation_levels: f64,
    /// Mean per-cell weight damage of the behavior-level mirror, in weight
    /// quantization levels.
    pub mean_weight_damage_levels: f64,
}

impl FaultSummary {
    /// Fraction of solves that needed a fallback rung.
    pub fn fallback_rate(&self) -> f64 {
        if self.solves == 0 {
            0.0
        } else {
            self.fallback_solves as f64 / self.solves as f64
        }
    }
}

/// Derives the per-trial seed from the campaign master seed (SplitMix64
/// increment, so trials are decorrelated but replayable).
fn trial_seed(master: u64, trial: usize) -> u64 {
    master ^ (trial as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

thread_local! {
    /// Per-worker prepared-system cache for the representative crossbar.
    /// Successive trials on a worker differ only in element *values*
    /// (defect overlays swap resistances, never topology), so the
    /// sparse-direct engine refreshes its cached factorization in place
    /// (the `solver.klu.refactor` fast path) instead of re-analyzing the
    /// structure every trial. Thread-count invariance holds because a
    /// refreshed factorization is bit-identical to a cold one on these
    /// diagonally dominant systems — it does not matter which trials
    /// happened to share a worker.
    static TRIAL_SLOT: RefCell<Option<PreparedSystem>> = const { RefCell::new(None) };
}

/// Primary-read solve through the per-worker prepared system, escalating
/// to the full [`solve_robust`] recovery ladder when the fast path errors
/// or returns a non-finite solution. Returns the accepted solution,
/// whether the ladder had to answer, and the solution's KCL residual.
fn solve_primary(
    slot: &mut Option<PreparedSystem>,
    xbar: &CrossbarCircuit,
    inputs: &[Voltage],
) -> Result<(DcSolution, bool, f64), CoreError> {
    let fast = xbar
        .input_rhs(inputs)
        .and_then(|rhs| {
            prepare_or_reuse(slot, xbar.circuit(), &BatchOptions::default())?
                .solve(xbar.circuit(), &rhs)
        });
    match fast {
        Ok(solution) if solution_is_finite(xbar.circuit(), &solution) => {
            let residual = kcl_residual(xbar.circuit(), &solution);
            Ok((solution, false, residual))
        }
        // The cached path failed (singular under this defect map) or
        // produced garbage: the trial goes through the same recovery
        // ladder the pre-cache campaign used for every read.
        _ => {
            let (solution, recovery) = solve_robust(xbar.circuit(), &RobustOptions::default())?;
            Ok((solution, true, recovery.kcl_residual))
        }
    }
}

/// The same NaN/∞ screen the recovery ladder applies to accepted rungs.
fn solution_is_finite(circuit: &Circuit, solution: &DcSolution) -> bool {
    solution.voltages().iter().all(|v| v.is_finite())
        && (0..circuit.element_count())
            .all(|idx| solution.element_current(idx).amperes().is_finite())
}

/// Immutable per-campaign state shared by every Monte-Carlo trial.
struct TrialContext<'a> {
    fault_config: &'a FaultConfig,
    device: &'a mnsim_tech::memristor::MemristorModel,
    clean_spec: &'a CrossbarSpec,
    clean_outputs: &'a [Voltage],
    weights: &'a Tensor,
    weight_quantizer: &'a Quantizer,
    output_span: f64,
    v_read: f64,
    /// Extra read vectors beyond the primary one (`inputs_per_trial - 1`
    /// entries), shared by every trial.
    extra_reads: &'a [Vec<Voltage>],
    /// Clean-array outputs for each extra read, solved once per campaign.
    clean_extra_outputs: &'a [Vec<Voltage>],
    /// Trace span of the campaign; trial spans attach here even when the
    /// trial runs on a worker thread.
    trace_parent: u64,
}

/// Everything one trial contributes to the summary. Outcomes are reduced
/// in trial order, so aggregates are bit-identical for any thread count.
struct TrialOutcome {
    spare_rows_used: usize,
    retired: bool,
    solve: Option<SolveOutcome>,
}

/// The circuit- and behavior-level measurements of one surviving trial.
struct SolveOutcome {
    fallback: bool,
    kcl_residual: f64,
    deviations: Vec<f64>,
    weight_damage: f64,
}

/// Runs one Monte-Carlo trial: draw the fault map, apply graceful
/// degradation, and (if the array survives) solve the circuit path and
/// mirror the behavior path.
fn run_trial(context: &TrialContext<'_>, trial: usize) -> Result<TrialOutcome, CoreError> {
    let _span = TRIAL_SPAN.enter();
    let _trace_span = trace::span_under(
        "fault.trial",
        trace::Level::Trial,
        trial as i64,
        context.trace_parent,
    );
    FAULT_TRIALS.inc();
    let fault_config = context.fault_config;
    let size = context.clean_spec.rows;
    let mut map = FaultMap::generate(
        size,
        size,
        &fault_config.rates,
        trial_seed(fault_config.seed, trial),
    )?;

    // Graceful degradation, stage 1: remap the worst rows to spares.
    let defective_rows = map.defective_rows();
    let repaired = defective_rows.len().min(fault_config.spare_rows);
    for &row in defective_rows.iter().take(fault_config.spare_rows) {
        map.clear_row(row);
    }

    // Stage 2: retire arrays still beyond the defect threshold.
    if map.defective_cell_fraction() > fault_config.retire_threshold {
        FAULT_RETIRED.inc();
        return Ok(TrialOutcome {
            spare_rows_used: repaired,
            retired: true,
            solve: None,
        });
    }

    // Circuit path: the defect overlay changes only element values, so the
    // per-worker prepared system refreshes its cached sparse factorization
    // instead of re-analyzing; the recovery ladder absorbs whatever the
    // fast path cannot.
    let faulty_spec = context
        .clean_spec
        .clone()
        .with_faults(map.clone(), context.device.r_max, context.device.r_min);
    let faulty_xbar = faulty_spec.build()?;
    let (solution, fallback, trial_kcl_residual) = TRIAL_SLOT.with(|slot| {
        solve_primary(
            &mut slot.borrow_mut(),
            &faulty_xbar,
            &context.clean_spec.inputs,
        )
    })?;

    let faulty_outputs = faulty_xbar.output_voltages(&solution);
    let deviation_of = |clean: &Voltage, faulty: &Voltage| {
        let relative = (clean.volts() - faulty.volts()).abs() / context.v_read;
        relative * context.output_span
    };
    let mut deviations: Vec<f64> = context
        .clean_outputs
        .iter()
        .zip(&faulty_outputs)
        .map(|(clean, faulty)| deviation_of(clean, faulty))
        .collect();

    // Extra reads re-drive the same faulty array through the same cached
    // prepared system: the factorization is already current for this
    // trial's values, so each read costs one RHS replay + backsolve.
    if !context.extra_reads.is_empty() {
        TRIAL_SLOT.with(|slot| -> Result<(), CoreError> {
            let mut slot = slot.borrow_mut();
            for (read, clean) in context
                .extra_reads
                .iter()
                .zip(context.clean_extra_outputs)
            {
                let rhs = faulty_xbar.input_rhs(read)?;
                let solved = prepare_or_reuse(
                    &mut slot,
                    faulty_xbar.circuit(),
                    &BatchOptions::default(),
                )
                .and_then(|prepared| prepared.solve(faulty_xbar.circuit(), &rhs));
                let outputs = match solved {
                    Ok(sol) => faulty_xbar.output_voltages(&sol),
                    Err(_) => {
                        // A defect map that defeats the direct path goes
                        // through the same recovery ladder as the primary
                        // read.
                        let patched = faulty_xbar.circuit().with_source_voltages(read)?;
                        let (sol, _) = solve_robust(&patched, &RobustOptions::default())?;
                        faulty_xbar.output_voltages(&sol)
                    }
                };
                deviations.extend(
                    clean
                        .iter()
                        .zip(&outputs)
                        .map(|(c, f)| deviation_of(c, f)),
                );
            }
            Ok(())
        })?;
    }

    // Behavior path: same map, weight-level mirror.
    let weight_damage = weight_damage_levels(context.weights, context.weight_quantizer, &map)?;

    Ok(TrialOutcome {
        spare_rows_used: repaired,
        retired: false,
        solve: Some(SolveOutcome {
            fallback,
            kcl_residual: trial_kcl_residual,
            deviations,
            weight_damage,
        }),
    })
}

/// Runs the full MNSIM simulation plus a fault-injection campaign on the
/// shared [`exec`] worker pool.
///
/// The returned [`Report`] is the clean behavior-level result with
/// [`Report::faults`] populated. Defective arrays *never* abort the run:
/// unsolvable or degraded trials are absorbed into the yield and recovery
/// statistics.
///
/// Both the clean simulation and the Monte-Carlo trial loop use
/// `options.threads`; trials are seed-decorrelated and reduced in trial
/// order, so the summary is bit-identical for every thread count.
///
/// # Errors
///
/// Returns configuration validation errors; circuit errors only escape if
/// even the dense-LU fallback cannot solve a trial (a genuinely singular
/// system, which the near-open defect modeling prevents).
pub fn simulate_with_faults_with(
    config: &Config,
    fault_config: &FaultConfig,
    options: &ExecOptions,
) -> Result<Report, CoreError> {
    simulate_with_faults_controlled(config, fault_config, options, &RunControl::default())
}

/// [`simulate_with_faults_with`] under a campaign control plane: the run
/// observes `control`'s [`CancelToken`](crate::exec::CancelToken) and
/// [`Deadline`](crate::exec::Deadline) at chunk boundaries, and honors
/// [`FaultConfig::checkpoint`] — persisting completed trials as it goes
/// and resuming from an existing checkpoint file.
///
/// One panicking trial no longer poisons the campaign: it surfaces as
/// [`CoreError::WorkerPanic`] after the sibling trials' results have been
/// collected (and checkpointed, when a policy is set).
///
/// # Errors
///
/// Everything [`simulate_with_faults_with`] returns, plus
/// [`CoreError::Cancelled`] / [`CoreError::DeadlineExceeded`] when
/// `control` cut the run short (carrying the checkpoint path when one was
/// written), [`CoreError::WorkerPanic`] for a panicking trial, and
/// [`CoreError::Checkpoint`] for unusable or mismatched checkpoint files.
pub fn simulate_with_faults_controlled(
    config: &Config,
    fault_config: &FaultConfig,
    options: &ExecOptions,
    control: &RunControl,
) -> Result<Report, CoreError> {
    let _span = CAMPAIGN_SPAN.enter();
    let campaign_span = trace::span("fault.campaign", trace::Level::Run);
    FAULT_CAMPAIGNS.inc();
    fault_config.validate()?;
    let mut report = simulate_with(config, options)?;

    let device = &config.device;
    let size = config.crossbar_size.clamp(1, REPRESENTATIVE_LIMIT);
    let cell_levels = device.levels();
    let weight_quantizer = Quantizer::unsigned_unit(device.bits_per_cell)?;

    // One clean representative crossbar, reused by every trial: random but
    // seed-determined cell levels and input activations.
    let mut rng = StdRng::seed_from_u64(fault_config.seed);
    let levels: Vec<u32> = (0..size * size)
        .map(|_| rng.gen_range(0u32..cell_levels))
        .collect();
    let states: Vec<Resistance> = levels
        .iter()
        .map(|&level| device.resistance_for_level(level))
        .collect();
    let inputs: Vec<Voltage> = (0..size)
        .map(|_| Voltage::from_volts(device.v_read.volts() * rng.gen_range(0.25..=1.0)))
        .collect();
    let clean_spec = CrossbarSpec {
        rows: size,
        cols: size,
        wire_resistance: config.interconnect.segment_resistance(),
        sense_resistance: config.sense_resistance,
        states,
        iv: device.iv,
        inputs,
        faults: None,
    };
    let clean_xbar = clean_spec.build()?;
    let clean_solution = solve_dc(clean_xbar.circuit(), &SolveOptions::default())?;
    let clean_outputs = clean_xbar.output_voltages(&clean_solution);

    // Extra per-trial read vectors are drawn *after* the primary campaign
    // draws, so the RNG stream prefix — and therefore every statistic of a
    // single-read campaign — is unchanged at the default `inputs_per_trial`
    // of one.
    let extra_reads: Vec<Vec<Voltage>> = (1..fault_config.inputs_per_trial)
        .map(|_| {
            (0..size)
                .map(|_| Voltage::from_volts(device.v_read.volts() * rng.gen_range(0.25..=1.0)))
                .collect()
        })
        .collect();
    let clean_extra_outputs: Vec<Vec<Voltage>> = if extra_reads.is_empty() {
        Vec::new()
    } else {
        let mut prepared = PreparedSystem::build(clean_xbar.circuit(), BatchOptions::default())?;
        let batch: Vec<Rhs> = extra_reads
            .iter()
            .map(|read| clean_xbar.input_rhs(read))
            .collect::<Result<_, _>>()?;
        prepared
            .solve_batch(clean_xbar.circuit(), &batch)?
            .iter()
            .map(|sol| clean_xbar.output_voltages(sol))
            .collect()
    };

    // Behavior-level mirror of the same array: weight = level fraction.
    let weights = Tensor::from_vec(
        &[size, size],
        levels
            .iter()
            .map(|&level| level as f64 / (cell_levels - 1).max(1) as f64)
            .collect(),
    )?;

    let context = TrialContext {
        fault_config,
        device,
        clean_spec: &clean_spec,
        clean_outputs: &clean_outputs,
        weights: &weights,
        weight_quantizer: &weight_quantizer,
        output_span: (config.output_levels() - 1) as f64,
        v_read: device.v_read.volts(),
        extra_reads: &extra_reads,
        clean_extra_outputs: &clean_extra_outputs,
        trace_parent: campaign_span.id(),
    };
    // Per-trial result slots, filled from a resumed checkpoint first and
    // then by the controlled engine. Trials are seed-independent, so any
    // completion order merges into the same canonical-order reduction.
    let trials = fault_config.trials;
    let mut slots: Vec<Option<TrialOutcome>> = (0..trials).map(|_| None).collect();
    let fingerprint = campaign_fingerprint(config, fault_config);

    if let Some(policy) = &fault_config.checkpoint {
        if std::path::Path::new(&policy.path).exists() {
            let resumed = load_fault_checkpoint(&policy.path, fingerprint, trials, &mut slots)?;
            checkpoint::note_resumed(resumed);
        }
    }

    // Waves: with a checkpoint policy, run `every_n` missing trials at a
    // time and persist after each wave; without one, live telemetry picks
    // a thread-independent grain (or a single wave covers everything —
    // the exact legacy open-loop run — when telemetry is off too).
    let wave_len = match &fault_config.checkpoint {
        Some(policy) => policy.every_n.max(1),
        None => obs::live::wave_grain(trials),
    };
    let remaining: Vec<usize> = (0..trials).filter(|&t| slots[t].is_none()).collect();
    let mut done = trials - remaining.len();
    obs::live::campaign_started("fault_mc", trials, done);
    let mut failure: Option<ExecError<CoreError>> = None;
    let mut interrupt = None;

    for wave in remaining.chunks(wave_len.min(remaining.len().max(1))) {
        if control.interrupted().is_some() && interrupt.is_none() {
            interrupt = control.interrupted();
            // An interrupted run must always leave its checkpoint on disk,
            // even when the control plane tripped before the first wave.
            if let Some(policy) = &fault_config.checkpoint {
                write_fault_checkpoint(policy, fingerprint, fault_config, &slots)?;
                obs::live::checkpoint_written(&policy.path, done);
            }
            break;
        }
        let wave_report =
            exec::run_indices(wave, options.threads, control, |trial| run_trial(&context, trial));
        done += wave_report.completed;
        for (position, slot) in wave_report.results.into_iter().enumerate() {
            if let Some(outcome) = slot {
                slots[wave[position]] = Some(outcome);
            }
        }
        if let Some(policy) = &fault_config.checkpoint {
            write_fault_checkpoint(policy, fingerprint, fault_config, &slots)?;
            obs::live::checkpoint_written(&policy.path, done);
        }
        if wave_report.error.is_some() {
            failure = wave_report.error;
            break;
        }
        if wave_report.interrupt.is_some() {
            interrupt = wave_report.interrupt;
            break;
        }
        // Only clean waves report progress: an interrupted wave's `done`
        // depends on where the worker threads happened to stop, so
        // emitting it would break the cross-thread determinism contract.
        obs::live::wave_completed(done, trials, control.deadline.map(|d| d.remaining()));
    }

    let completed = slots.iter().filter(|slot| slot.is_some()).count();
    let checkpoint_path = fault_config
        .checkpoint
        .as_ref()
        .map(|policy| policy.path.clone());
    if let Some(error) = failure {
        obs::live::campaign_finished(completed, trials, "failed");
        return Err(match error {
            ExecError::Item { error, .. } => error,
            ExecError::WorkerPanic { index, payload } => CoreError::WorkerPanic { index, payload },
            ExecError::Cancelled { .. } => CoreError::Cancelled {
                completed,
                total: trials,
                checkpoint: checkpoint_path,
            },
            ExecError::DeadlineExceeded { .. } => CoreError::DeadlineExceeded {
                completed,
                total: trials,
                checkpoint: checkpoint_path,
            },
        });
    }
    if completed < trials {
        // The control plane cut the run short (possibly between waves).
        obs::live::campaign_finished(completed, trials, "interrupted");
        let kind = interrupt
            .or_else(|| control.interrupted())
            .unwrap_or(Interrupt::Cancelled);
        return Err(match kind {
            Interrupt::Cancelled => CoreError::Cancelled {
                completed,
                total: trials,
                checkpoint: checkpoint_path,
            },
            Interrupt::DeadlineExceeded => CoreError::DeadlineExceeded {
                completed,
                total: trials,
                checkpoint: checkpoint_path,
            },
        });
    }

    obs::live::campaign_finished(trials, trials, "complete");
    let outcomes: Vec<TrialOutcome> = slots
        .into_iter()
        .map(|slot| slot.expect("complete campaign has every trial outcome"))
        .collect();
    report.faults = Some(reduce_outcomes(fault_config, &outcomes));
    Ok(report)
}

/// Reduces per-trial outcomes — **in trial order** — into the campaign
/// summary. Canonical order makes every aggregate bit-identical for any
/// thread count, wave size, or resume pattern.
fn reduce_outcomes(fault_config: &FaultConfig, outcomes: &[TrialOutcome]) -> FaultSummary {
    let mut retired_trials = 0usize;
    let mut spare_rows_used = 0usize;
    let mut solves = 0usize;
    let mut fallback_solves = 0usize;
    let mut worst_kcl_residual = 0.0f64;
    let mut deviation_samples: Vec<f64> = Vec::new();
    let mut weight_damage_sum = 0.0f64;
    let mut damage_samples = 0usize;

    for outcome in outcomes {
        spare_rows_used += outcome.spare_rows_used;
        if outcome.retired {
            retired_trials += 1;
        }
        if let Some(solve) = &outcome.solve {
            solves += 1;
            if solve.fallback {
                fallback_solves += 1;
            }
            worst_kcl_residual = worst_kcl_residual.max(solve.kcl_residual);
            deviation_samples.extend_from_slice(&solve.deviations);
            weight_damage_sum += solve.weight_damage;
            damage_samples += 1;
        }
    }

    deviation_samples.sort_by(|a, b| a.total_cmp(b));
    let mean_deviation_levels = if deviation_samples.is_empty() {
        0.0
    } else {
        deviation_samples.iter().sum::<f64>() / deviation_samples.len() as f64
    };
    let p95_deviation_levels = if deviation_samples.is_empty() {
        0.0
    } else {
        let index = ((deviation_samples.len() as f64 * 0.95).ceil() as usize)
            .clamp(1, deviation_samples.len());
        deviation_samples[index - 1]
    };

    FaultSummary {
        trials: fault_config.trials,
        yield_fraction: 1.0 - retired_trials as f64 / fault_config.trials as f64,
        retired_trials,
        mean_spare_rows_used: spare_rows_used as f64 / fault_config.trials as f64,
        solves,
        fallback_solves,
        worst_kcl_residual,
        mean_deviation_levels,
        p95_deviation_levels,
        mean_weight_damage_levels: if damage_samples == 0 {
            0.0
        } else {
            weight_damage_sum / damage_samples as f64
        },
    }
}

/// Fingerprints the campaign identity: everything that determines the
/// per-trial outcomes (network config, rates, trial count, master seed,
/// repair parameters) and nothing that doesn't (thread count, the
/// checkpoint policy itself).
pub(crate) fn campaign_fingerprint(config: &Config, fault_config: &FaultConfig) -> u64 {
    let canonical = format!(
        "fault_mc|config={config:?}|rates={rates:?}|trials={trials}|seed={seed:#018x}|\
         spare_rows={spare}|retire_threshold={retire:?}|inputs_per_trial={reads}",
        rates = fault_config.rates,
        trials = fault_config.trials,
        seed = fault_config.seed,
        spare = fault_config.spare_rows,
        retire = fault_config.retire_threshold,
        reads = fault_config.inputs_per_trial,
    );
    checkpoint::fnv64(canonical.as_bytes())
}

/// Serializes the completed-trial slots into the versioned checkpoint
/// format and writes them atomically.
fn write_fault_checkpoint(
    policy: &CheckpointPolicy,
    fingerprint: u64,
    fault_config: &FaultConfig,
    slots: &[Option<TrialOutcome>],
) -> Result<(), CoreError> {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"schema\": ");
    let _ = write!(out, "{}", checkpoint::SCHEMA_VERSION);
    out.push_str(",\n  \"kind\": \"fault_mc\",\n  \"fingerprint\": ");
    checkpoint::push_json_string(&mut out, &checkpoint::hex_u64(fingerprint));
    out.push_str(",\n  \"seed\": ");
    checkpoint::push_json_string(&mut out, &checkpoint::hex_u64(fault_config.seed));
    out.push_str(",\n  \"trials\": ");
    let _ = write!(out, "{}", fault_config.trials);
    out.push_str(",\n  \"completed\": [");
    let mut first = true;
    for (trial, slot) in slots.iter().enumerate() {
        let Some(outcome) = slot else { continue };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    {\"trial\": ");
        let _ = write!(out, "{trial}");
        out.push_str(", \"spare_rows_used\": ");
        let _ = write!(out, "{}", outcome.spare_rows_used);
        out.push_str(", \"retired\": ");
        out.push_str(if outcome.retired { "true" } else { "false" });
        out.push_str(", \"solve\": ");
        match &outcome.solve {
            None => out.push_str("null"),
            Some(solve) => {
                out.push_str("{\"fallback\": ");
                out.push_str(if solve.fallback { "true" } else { "false" });
                out.push_str(", \"kcl_residual\": ");
                checkpoint::push_json_f64(&mut out, solve.kcl_residual);
                out.push_str(", \"weight_damage\": ");
                checkpoint::push_json_f64(&mut out, solve.weight_damage);
                out.push_str(", \"deviations\": [");
                for (i, deviation) in solve.deviations.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    checkpoint::push_json_f64(&mut out, *deviation);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    checkpoint::write_atomic(&policy.path, &out)?;
    checkpoint::note_written(slots.iter().filter(|slot| slot.is_some()).count());
    Ok(())
}

/// Loads a fault-campaign checkpoint into the trial slots, verifying it
/// belongs to this exact campaign. Returns the number of trials resumed.
fn load_fault_checkpoint(
    path: &str,
    fingerprint: u64,
    trials: usize,
    slots: &mut [Option<TrialOutcome>],
) -> Result<usize, CoreError> {
    let malformed = |reason: String| CoreError::Checkpoint {
        path: path.to_string(),
        reason,
    };
    let value = checkpoint::read_json(path)?;
    checkpoint::check_header(path, &value, "fault_mc")?;
    let found = checkpoint::require_hex_u64(path, &value, "fingerprint")?;
    if found != fingerprint {
        return Err(malformed(format!(
            "fingerprint {} does not match this campaign ({}); refusing to resume a \
             different config/seed/trial-count",
            checkpoint::hex_u64(found),
            checkpoint::hex_u64(fingerprint),
        )));
    }
    let stored_trials = value.get("trials").and_then(JsonValue::as_f64);
    if stored_trials != Some(trials as f64) {
        return Err(malformed(format!(
            "trial count {stored_trials:?} does not match campaign ({trials})"
        )));
    }
    let completed = value
        .get("completed")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| malformed("missing `completed` array".into()))?;
    let mut resumed = 0usize;
    for record in completed {
        let trial = record
            .get("trial")
            .and_then(JsonValue::as_f64)
            .filter(|t| t.fract() == 0.0 && *t >= 0.0 && *t < trials as f64)
            .ok_or_else(|| malformed("completed record with missing/out-of-range `trial`".into()))?
            as usize;
        let spare_rows_used = record
            .get("spare_rows_used")
            .and_then(JsonValue::as_f64)
            .filter(|v| v.fract() == 0.0 && *v >= 0.0)
            .ok_or_else(|| malformed(format!("trial {trial}: bad `spare_rows_used`")))?
            as usize;
        let retired = match record.get("retired") {
            Some(JsonValue::Bool(b)) => *b,
            _ => return Err(malformed(format!("trial {trial}: bad `retired`"))),
        };
        let solve = match record.get("solve") {
            None | Some(JsonValue::Null) => None,
            Some(solve) => {
                let fallback = match solve.get("fallback") {
                    Some(JsonValue::Bool(b)) => *b,
                    _ => return Err(malformed(format!("trial {trial}: bad `fallback`"))),
                };
                let kcl_residual = solve
                    .get("kcl_residual")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| malformed(format!("trial {trial}: bad `kcl_residual`")))?;
                let weight_damage = solve
                    .get("weight_damage")
                    .and_then(JsonValue::as_f64)
                    .ok_or_else(|| malformed(format!("trial {trial}: bad `weight_damage`")))?;
                let deviations = solve
                    .get("deviations")
                    .and_then(JsonValue::as_array)
                    .ok_or_else(|| malformed(format!("trial {trial}: bad `deviations`")))?
                    .iter()
                    .map(|d| {
                        d.as_f64()
                            .ok_or_else(|| malformed(format!("trial {trial}: bad deviation")))
                    })
                    .collect::<Result<Vec<f64>, CoreError>>()?;
                Some(SolveOutcome {
                    fallback,
                    kcl_residual,
                    weight_damage,
                    deviations,
                })
            }
        };
        slots[trial] = Some(TrialOutcome {
            spare_rows_used,
            retired,
            solve,
        });
        resumed += 1;
    }
    Ok(resumed)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Config {
        Config::fully_connected_mlp(&[64, 32]).unwrap()
    }

    // Default-ExecOptions shorthand so the campaign tests below stay
    // terse while exercising the shared worker-pool path.
    fn simulate_with_faults(
        config: &Config,
        fault_config: &FaultConfig,
    ) -> Result<Report, CoreError> {
        simulate_with_faults_with(config, fault_config, &ExecOptions::default())
    }

    #[test]
    fn campaign_is_bit_identical_for_every_thread_count() {
        let config = small_config();
        let fault_config = FaultConfig {
            rates: FaultRates::stuck_at(0.05),
            trials: 6,
            ..FaultConfig::default()
        };
        let serial =
            simulate_with_faults_with(&config, &fault_config, &ExecOptions::serial()).unwrap();
        for threads in [0usize, 2, 7] {
            let parallel = simulate_with_faults_with(
                &config,
                &fault_config,
                &ExecOptions::with_threads(threads),
            )
            .unwrap();
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn clean_rates_give_full_yield_and_no_degradation() {
        let fault_config = FaultConfig {
            rates: FaultRates::default(),
            trials: 3,
            ..FaultConfig::default()
        };
        let report = simulate_with_faults(&small_config(), &fault_config).unwrap();
        let summary = report.faults.unwrap();
        assert_eq!(summary.yield_fraction, 1.0);
        assert_eq!(summary.retired_trials, 0);
        assert_eq!(summary.solves, 3);
        assert_eq!(summary.mean_deviation_levels, 0.0);
        assert_eq!(summary.mean_weight_damage_levels, 0.0);
        assert!(summary.worst_kcl_residual < 1e-6);
    }

    #[test]
    fn monte_carlo_is_bit_identical_for_fixed_seed() {
        let fault_config = FaultConfig {
            rates: FaultRates {
                stuck_at_hrs: 0.03,
                stuck_at_lrs: 0.02,
                drifted: 0.01,
                drift_decades: 1.0,
                broken_wordline: 0.1,
                broken_bitline: 0.1,
            },
            trials: 4,
            ..FaultConfig::default()
        };
        let config = small_config();
        let a = simulate_with_faults(&config, &fault_config).unwrap();
        let b = simulate_with_faults(&config, &fault_config).unwrap();
        assert_eq!(a.faults, b.faults);
        let different_seed = FaultConfig {
            seed: fault_config.seed + 1,
            ..fault_config
        };
        let c = simulate_with_faults(&config, &different_seed).unwrap();
        assert_ne!(a.faults, c.faults);
    }

    #[test]
    fn heavy_faults_degrade_accuracy_and_yield() {
        let light = FaultConfig {
            rates: FaultRates::stuck_at(0.02),
            trials: 6,
            ..FaultConfig::default()
        };
        let heavy = FaultConfig {
            rates: FaultRates {
                broken_bitline: 0.3,
                ..FaultRates::stuck_at(0.4)
            },
            spare_rows: 0,
            trials: 6,
            ..FaultConfig::default()
        };
        let config = small_config();
        let light_summary = simulate_with_faults(&config, &light).unwrap().faults.unwrap();
        let heavy_summary = simulate_with_faults(&config, &heavy).unwrap().faults.unwrap();
        assert!(
            light_summary.mean_weight_damage_levels
                <= heavy_summary.mean_weight_damage_levels.max(1e-12)
                || heavy_summary.solves == 0,
            "light {} vs heavy {}",
            light_summary.mean_weight_damage_levels,
            heavy_summary.mean_weight_damage_levels
        );
        assert!(heavy_summary.yield_fraction <= light_summary.yield_fraction);
        assert!(heavy_summary.retired_trials > 0, "40 % stuck-at must retire arrays");
    }

    #[test]
    fn spare_rows_improve_yield() {
        let rates = FaultRates {
            broken_wordline: 0.35,
            ..FaultRates::default()
        };
        let config = small_config();
        let without = FaultConfig {
            rates,
            trials: 8,
            spare_rows: 0,
            retire_threshold: 0.1,
            ..FaultConfig::default()
        };
        let with = FaultConfig {
            spare_rows: 8,
            ..without.clone()
        };
        let yield_without = simulate_with_faults(&config, &without)
            .unwrap()
            .faults
            .unwrap()
            .yield_fraction;
        let yield_with = simulate_with_faults(&config, &with)
            .unwrap()
            .faults
            .unwrap()
            .yield_fraction;
        assert!(
            yield_with >= yield_without,
            "{yield_with} !>= {yield_without}"
        );
    }

    #[test]
    fn multi_read_trials_are_deterministic_and_extend_deviations() {
        let config = small_config();
        // Clean rates: the faulty array equals the clean one, and the
        // batched faulty reads go through the same prepared-system
        // arithmetic as the batched clean baseline — deviations stay
        // exactly zero.
        let clean_multi = FaultConfig {
            rates: FaultRates::default(),
            trials: 2,
            inputs_per_trial: 3,
            ..FaultConfig::default()
        };
        let a = simulate_with_faults(&config, &clean_multi).unwrap();
        let b = simulate_with_faults(&config, &clean_multi).unwrap();
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.faults.unwrap().mean_deviation_levels, 0.0);

        // Faulty rates: the extra reads see the same defects and contribute
        // real deviation mass, deterministically.
        let faulty_multi = FaultConfig {
            rates: FaultRates::stuck_at(0.2),
            trials: 2,
            spare_rows: 0,
            retire_threshold: 1.0,
            inputs_per_trial: 3,
            ..FaultConfig::default()
        };
        let multi = simulate_with_faults(&config, &faulty_multi)
            .unwrap()
            .faults
            .unwrap();
        let single = simulate_with_faults(
            &config,
            &FaultConfig {
                inputs_per_trial: 1,
                ..faulty_multi.clone()
            },
        )
        .unwrap()
        .faults
        .unwrap();
        assert!(multi.mean_deviation_levels > 0.0);
        assert!(single.mean_deviation_levels > 0.0);
        // The primary read is untouched by the extra ones.
        assert_eq!(multi.solves, single.solves);
        assert_eq!(multi.yield_fraction, single.yield_fraction);
        let again = simulate_with_faults(&config, &faulty_multi)
            .unwrap()
            .faults
            .unwrap();
        assert_eq!(multi, again);
    }

    #[test]
    fn invalid_campaigns_rejected() {
        let config = small_config();
        let zero_trials = FaultConfig {
            trials: 0,
            ..FaultConfig::default()
        };
        assert!(simulate_with_faults(&config, &zero_trials).is_err());
        let zero_reads = FaultConfig {
            inputs_per_trial: 0,
            ..FaultConfig::default()
        };
        assert!(simulate_with_faults(&config, &zero_reads).is_err());
        let bad_threshold = FaultConfig {
            retire_threshold: 2.0,
            ..FaultConfig::default()
        };
        assert!(simulate_with_faults(&config, &bad_threshold).is_err());
        let bad_rates = FaultConfig {
            rates: FaultRates {
                stuck_at_hrs: -0.5,
                ..FaultRates::default()
            },
            ..FaultConfig::default()
        };
        assert!(matches!(
            simulate_with_faults(&config, &bad_rates),
            Err(CoreError::Tech(_))
        ));
    }

    #[test]
    fn fallback_rate_is_well_defined() {
        let summary = FaultSummary {
            trials: 4,
            yield_fraction: 0.0,
            retired_trials: 4,
            mean_spare_rows_used: 0.0,
            solves: 0,
            fallback_solves: 0,
            worst_kcl_residual: 0.0,
            mean_deviation_levels: 0.0,
            p95_deviation_levels: 0.0,
            mean_weight_damage_levels: 0.0,
        };
        assert_eq!(summary.fallback_rate(), 0.0);
    }
}
