//! # MNSIM-RS — simulation platform for memristor-based neuromorphic systems
//!
//! This is the facade crate of the MNSIM reproduction. It re-exports the
//! member crates under stable names:
//!
//! * [`obs`] — observability layer: counters, histograms, timer spans
//!   ([`mnsim_obs`]),
//! * [`tech`] — technology & device models ([`mnsim_tech`]),
//! * [`circuit`] — SPICE-class DC circuit simulator ([`mnsim_circuit`]),
//! * [`nn`] — neural-network substrate ([`mnsim_nn`]),
//! * [`core`] — the MNSIM platform itself ([`mnsim_core`]),
//! * [`serve`] — the simulation-as-a-service session server and client
//!   ([`mnsim_serve`]),
//!
//! and gathers the session-level API in [`prelude`]: build a
//! [`Simulator`], set its [`ExecOptions`] once, and run, explore, or
//! validate on the shared worker pool.
//!
//! See the repository `README.md` for a tour and `examples/quickstart.rs`
//! for a complete simulation run.
//!
//! # Examples
//!
//! ```
//! use mnsim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Simulator::new(Config::fully_connected_mlp(&[128, 128, 128])?)
//!     .threads(2)
//!     .run()?;
//! assert!(report.total_area.square_millimeters() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use mnsim_circuit as circuit;
pub use mnsim_core as core;
pub use mnsim_obs as obs;
pub use mnsim_nn as nn;
pub use mnsim_serve as serve;
pub use mnsim_tech as tech;

pub use mnsim_core::{ExecOptions, Simulator};

/// The session-level API in one import: `use mnsim::prelude::*;`.
///
/// Brings in the [`Simulator`] facade, its configuration and execution
/// types, and the result types its methods return — everything a typical
/// simulation, fault-campaign, design-space-exploration, or validation
/// program needs.
pub mod prelude {
    pub use mnsim_core::cache::{Artifact, ArtifactCache, CacheStats};
    pub use mnsim_core::checkpoint::CheckpointPolicy;
    pub use mnsim_core::config::Config;
    pub use mnsim_core::dse::{Constraints, DesignSpace, DseResult, Objective};
    pub use mnsim_core::error::{ConfigError, CoreError};
    pub use mnsim_core::exec::{CancelToken, Deadline, ExecError, ExecOptions, RunControl};
    pub use mnsim_core::fault_sim::{FaultConfig, FaultSummary};
    pub use mnsim_core::simulate::Report;
    pub use mnsim_core::simulator::{RunHandle, Session, Simulator};
    pub use mnsim_core::validate::ValidationRow;
    pub use mnsim_tech::fault::FaultRates;
}
