//! # MNSIM-RS — simulation platform for memristor-based neuromorphic systems
//!
//! This is the facade crate of the MNSIM reproduction. It re-exports the four
//! member crates under stable names:
//!
//! * [`obs`] — observability layer: counters, histograms, timer spans
//!   ([`mnsim_obs`]),
//! * [`tech`] — technology & device models ([`mnsim_tech`]),
//! * [`circuit`] — SPICE-class DC circuit simulator ([`mnsim_circuit`]),
//! * [`nn`] — neural-network substrate ([`mnsim_nn`]),
//! * [`core`] — the MNSIM platform itself ([`mnsim_core`]).
//!
//! See the repository `README.md` for a tour and `examples/quickstart.rs`
//! for a complete simulation run.
//!
//! # Examples
//!
//! ```
//! use mnsim::core::config::Config;
//! use mnsim::core::simulate::simulate;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = Config::fully_connected_mlp(&[128, 128, 128])?;
//! let report = simulate(&config)?;
//! assert!(report.total_area.square_millimeters() > 0.0);
//! # Ok(())
//! # }
//! ```

pub use mnsim_circuit as circuit;
pub use mnsim_core as core;
pub use mnsim_obs as obs;
pub use mnsim_nn as nn;
pub use mnsim_tech as tech;
